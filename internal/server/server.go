// Package server is CloudWalker's online serving tier: an HTTP/JSON front
// end over core.Querier and simstore.Store. The paper's offline
// D-estimation exists precisely so online queries become cheap enough to
// serve interactively (MCSP/MCSS cost is independent of graph size); this
// package supplies the remaining production plumbing — a sharded LRU
// result cache, singleflight coalescing so a thundering herd on one hot
// query runs the Monte Carlo estimate once, and a bounded-concurrency
// admission gate that sheds overload with 429 instead of queueing
// unboundedly.
//
// Endpoints:
//
//	GET  /pair?i=..&j=..                      single-pair SimRank (MCSP)
//	POST /pairs   {"pairs":[[i,j],...]}       batched MCSP
//	GET  /source?node=..&mode=walk|pull&k=..  single-source top-k (MCSS)
//
// /pair and /source (walk mode) additionally accept epsilon= and delta=
// parameters (and /pairs the matching body fields) selecting the adaptive
// sampling path: walkers launch in waves and stop once the estimate's
// confidence half-width is below epsilon at confidence 1−delta (see
// core.SinglePairAdaptive). epsilon=0 forces the fixed budget; absent
// parameters inherit the index's build-time Epsilon/Delta. The effective
// (epsilon, delta) is part of the cache and coalescing key, so adaptive
// and fixed answers never alias.
//
// Every query endpoint additionally accepts a backend= parameter (and
// /pairs a "backend" body field) choosing the answering engine: mc (the
// Monte Carlo estimator), lin (the linearized truncated-series engine
// over a precomputed diagonal, when one is loaded), or auto (hot queries
// — by cache entry hit count — to lin, the cold tail to mc). Absent, the
// daemon's -backend default applies. The effective backend is part of
// the cache key, stamped on responses as X-Cloudwalker-Backend, and
// counted in cloudwalker_backend_queries_total.
//
//	GET  /topk?node=..&k=..                   precomputed MCAP lookup
//	POST /edges   {"insert":[[u,v],...],...}  incremental edge updates (dynamic mode)
//	POST /refresh[?wait=1]                    compaction + snapshot hot-swap (dynamic mode)
//	GET  /healthz                             liveness + dataset shape + generation
//	GET  /stats                               cache/shed/latency counters
//
// Consistency caveat: cached entries are frozen Monte Carlo estimates.
// Because the estimator is deterministic in (pair, seed), a hit is
// bit-identical to recomputing — caching changes latency, never answers.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"cloudwalker/internal/core"
	"cloudwalker/internal/graph"
	"cloudwalker/internal/linserve"
	"cloudwalker/internal/metrics"
	"cloudwalker/internal/simstore"
	"cloudwalker/internal/sparse"
)

// Config tunes a Server around a core.Querier (passed to New). Zero
// values are serving-ready defaults.
type Config struct {
	// CacheSize is the total result-cache capacity in entries. 0 means
	// DefaultCacheSize; negative disables caching (every request
	// recomputes — the uncached arm of the serving benchmark).
	CacheSize int
	// CacheShards is the shard count of the result cache. 0 means
	// DefaultCacheShards.
	CacheShards int
	// MaxInFlight bounds concurrently-served query requests; excess
	// requests are shed with 429. 0 means 4×GOMAXPROCS; negative
	// disables admission control.
	MaxInFlight int
	// MaxBatch bounds the pair count of one /pairs request. 0 means
	// DefaultMaxBatch.
	MaxBatch int
	// Store serves /topk point lookups (optional; /topk answers 503
	// without it).
	Store *simstore.Store
	// Lin is the optional linearized engine answering backend=lin queries
	// (built by cloudwalkerd -lin or restored from a snapshot's lin
	// section). It must be bound to the querier's graph. Without it,
	// explicit backend=lin requests answer 400 and auto degrades to mc.
	Lin *linserve.Engine
	// Backend is the default answering engine for requests that do not
	// name one: "mc" (the zero value), "lin", or "auto". lin and auto
	// require Lin at construction — a daemon asked to default to the
	// linearized backend without a diagonal is a deployment error, not
	// something to discover one 400 at a time.
	Backend string
	// AutoHotHits is the cache-hit count at which the auto router moves a
	// query to the linearized backend. 0 means DefaultAutoHotHits.
	AutoHotHits int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ so serving
	// hotspots (walk kernels, cache contention) are profilable in
	// production. Off by default: the profile endpoints expose internals
	// and cost CPU, so operators opt in per deployment (cloudwalkerd
	// -pprof).
	EnablePprof bool
	// ShardName, when set, is stamped on every response as the
	// X-Cloudwalker-Shard header. Fleet deployments (internal/fleet) name
	// their shards so routing, failover, and e2e tests can prove which
	// process actually served an answer.
	ShardName string
	// SnapshotDir, when set, enables snapshot persistence: POST /snapshot
	// writes the serving snapshot (graph + index + top-k store + walk
	// options + generation) atomically into this directory, and
	// cloudwalkerd -snapshot reloads it at startup so a restarted daemon
	// serves bit-identical answers without re-running BuildIndex. Empty
	// disables POST /snapshot (503).
	SnapshotDir string
	// InitialGen stamps the starting snapshot's generation. Estimates are
	// deterministic per (pair, seed, generation), so a static server
	// restored from a persisted snapshot must resume the generation it
	// saved — otherwise its gen-prefixed cache keys and GenHeader would
	// disagree with the fleet's view. Ignored when Dynamic is set (the
	// overlay's BaseGen wins).
	InitialGen uint64

	// Dynamic enables the mutable-graph serving path: POST /edges applies
	// incremental edge updates to this overlay, and a background
	// compaction + Store.Swap periodically flips queries to a fresh
	// snapshot. The overlay's base must be the graph the initial querier
	// was built on. Nil = static serving (updates answer 503).
	Dynamic *graph.Dynamic
	// Reindex rebuilds a querier for a freshly compacted snapshot; it
	// runs on the background refresh goroutine and decides the index
	// policy (full rebuild, reduced walkers, warm-started diagonal —
	// cloudwalkerd rebuilds with the loaded index's options). Required
	// when Dynamic is set.
	Reindex func(*graph.Graph) (*core.Querier, error)
	// RefreshAfter automatically starts a background refresh once this
	// many updates are pending since the last compaction. 0 = manual
	// (POST /refresh only); ignored without Dynamic.
	RefreshAfter int
	// RebuildLin, when set on a dynamic server, rebuilds the linearized
	// engine for a freshly swapped snapshot. It runs on a background
	// goroutine AFTER the hot-swap (queries never wait on a diagonal
	// solve; they serve mc meanwhile) and the finished engine is flipped
	// into the serving snapshot atomically — and only if that snapshot is
	// still current, so a rebuild overtaken by another swap is discarded
	// rather than bound to the wrong graph. /healthz reports the rebuild
	// in flight as lin_rebuilding.
	RebuildLin func(*core.Querier) (*linserve.Engine, error)
}

// Defaults for Config zero values.
const (
	DefaultCacheSize   = 4096
	DefaultCacheShards = 16
	DefaultMaxBatch    = 1024
	defaultTopK        = 20
	maxTopK            = 1000
	// maxParts bounds the N of a part=i/N partition parameter; a fleet
	// larger than this would return result sets too small to merge
	// meaningfully anyway.
	maxParts = 1024
)

// Response headers of the shard/fleet protocol.
const (
	// GenHeader carries the graph generation a response was computed
	// against. The fleet router reads it to coordinate scatter-gathers
	// (a merged response must be single-generation) without parsing
	// bodies.
	GenHeader = "X-Cloudwalker-Gen"
	// ShardHeader carries Config.ShardName, identifying which process
	// served a response.
	ShardHeader = "X-Cloudwalker-Shard"
	// BackendHeader carries the effective backend of a query response —
	// for auto requests, the concrete engine the router picked (mc or
	// lin), so routing decisions are observable without parsing bodies.
	// /pairs batches may mix backends per pair and stamp the requested
	// name instead.
	BackendHeader = "X-Cloudwalker-Backend"
)

// Server is the HTTP serving tier. Create with New, expose with Handler.
type Server struct {
	snaps *Store // current serving snapshot (hot-swapped by refresh)
	cache *Cache // nil when caching is disabled
	mux   *http.ServeMux

	// Dynamic-graph plumbing (nil/zero for a static server).
	dyn           *graph.Dynamic
	reindex       func(*graph.Graph) (*core.Querier, error)
	refreshAfter  int
	refreshMu     chan struct{} // 1-slot semaphore serializing refreshes
	rebuildLin    func(*core.Querier) (*linserve.Engine, error)
	linRebuilding atomic.Bool // a post-swap lin rebuild is in flight

	flight    flightGroup
	gate      chan struct{} // nil when admission control is disabled
	maxBatch  int
	shardName string
	snapDir   string // "" disables POST /snapshot
	start     time.Time

	// Backend routing (see backend.go).
	defaultBackend string
	autoHotHits    int

	inFlight atomic.Int64

	// Serving counters live in the metrics registry, and /stats reads the
	// SAME Counter values /metrics scrapes — the JSON numbers cannot drift
	// from the Prometheus ones because there is only one set of numbers.
	reg       *metrics.Registry
	shed      *metrics.Counter // requests shed with 429
	computes  *metrics.Counter // underlying query computations (cache+coalesce misses)
	coalesced *metrics.Counter // requests that piggybacked on another's computation
	updates   *metrics.Counter // edge deltas applied through POST /edges
	swaps     *metrics.Counter // completed compaction hot-swaps
	snapSaves *metrics.Counter // serving snapshots persisted to disk
	// Adaptive-sampling counters, incremented per underlying computation
	// (cache hits re-serve the stored estimate without re-spending — or
	// re-saving — walkers).
	walkersSaved    *metrics.Counter // walkers the adaptive paths did not run
	adaptiveStopped *metrics.Counter // adaptive computations that stopped early
	// backendQueries counts underlying computations per answering engine
	// (cache hits re-serve without recomputing, so they do not count).
	backendQueries map[string]*metrics.Counter
	// deadlineExceeded counts query requests answered 504 because their
	// propagated deadline (timeout= / X-Cloudwalker-Deadline) expired —
	// on arrival or mid-computation.
	deadlineExceeded *metrics.Counter
	latency          map[string]*latencyRecorder

	// testComputeHook, when set, runs at the start of every underlying
	// computation (inside the singleflight, outside the cache). Tests use
	// it to hold computations open and observe coalescing and shedding.
	testComputeHook func(kind string)
}

// New validates cfg and builds a Server.
func New(q *core.Querier, cfg Config) (*Server, error) {
	if q == nil {
		return nil, fmt.Errorf("server: nil querier")
	}
	if cfg.Store != nil && cfg.Store.NumNodes() != q.Graph().NumNodes() {
		return nil, fmt.Errorf("server: store has %d nodes, graph has %d",
			cfg.Store.NumNodes(), q.Graph().NumNodes())
	}
	if cfg.Lin != nil && cfg.Lin.Graph() != q.Graph() {
		return nil, fmt.Errorf("server: linearized engine is bound to a different graph than the querier")
	}
	switch cfg.Backend {
	case "", BackendMC:
	case BackendLin, BackendAuto:
		if cfg.Lin == nil {
			return nil, fmt.Errorf("server: default backend %q requires a linearized engine (Config.Lin)", cfg.Backend)
		}
	default:
		return nil, fmt.Errorf("server: unknown backend %q (want mc, lin, or auto)", cfg.Backend)
	}
	if cfg.AutoHotHits < 0 {
		return nil, fmt.Errorf("server: negative auto-hot threshold %d", cfg.AutoHotHits)
	}
	initial := &Snapshot{Q: q, TopK: cfg.Store, Lin: cfg.Lin, Gen: cfg.InitialGen}
	s := &Server{
		snaps:        NewStore(initial),
		dyn:          cfg.Dynamic,
		reindex:      cfg.Reindex,
		refreshAfter: cfg.RefreshAfter,
		refreshMu:    make(chan struct{}, 1),
		rebuildLin:   cfg.RebuildLin,
		maxBatch:     cfg.MaxBatch,
		shardName:    cfg.ShardName,
		snapDir:      cfg.SnapshotDir,
		start:        time.Now(),
		latency:      make(map[string]*latencyRecorder),
	}
	s.defaultBackend = cfg.Backend
	if s.defaultBackend == "" {
		s.defaultBackend = BackendMC
	}
	s.autoHotHits = cfg.AutoHotHits
	if s.autoHotHits == 0 {
		s.autoHotHits = DefaultAutoHotHits
	}
	if cfg.Dynamic != nil {
		if cfg.Reindex == nil {
			return nil, fmt.Errorf("server: Dynamic serving requires a Reindex function")
		}
		if cfg.Dynamic.Base() != q.Graph() {
			return nil, fmt.Errorf("server: Dynamic overlay's base is not the querier's graph")
		}
		initial.Gen = cfg.Dynamic.BaseGen()
	}
	if s.maxBatch == 0 {
		s.maxBatch = DefaultMaxBatch
	}
	if s.maxBatch < 0 {
		return nil, fmt.Errorf("server: negative max batch %d", cfg.MaxBatch)
	}
	if cfg.CacheSize >= 0 {
		size := cfg.CacheSize
		if size == 0 {
			size = DefaultCacheSize
		}
		shards := cfg.CacheShards
		if shards == 0 {
			shards = DefaultCacheShards
		}
		cache, err := NewCache(size, shards)
		if err != nil {
			return nil, err
		}
		s.cache = cache
	}
	if cfg.MaxInFlight >= 0 {
		slots := cfg.MaxInFlight
		if slots == 0 {
			slots = 4 * runtime.GOMAXPROCS(0)
		}
		s.gate = make(chan struct{}, slots)
	}
	s.initMetrics()
	s.mux = http.NewServeMux()
	s.mux.Handle("/pair", s.gated("/pair", http.MethodGet, s.handlePair))
	s.mux.Handle("/pairs", s.gated("/pairs", http.MethodPost, s.handlePairs))
	s.mux.Handle("/source", s.gated("/source", http.MethodGet, s.handleSource))
	s.mux.Handle("/topk", s.gated("/topk", http.MethodGet, s.handleTopK))
	// Update, refresh, snapshot, and observability run outside the
	// admission gate: a query storm must not shed graph maintenance, and
	// health/metrics must answer precisely when the query path is
	// saturated.
	s.mux.HandleFunc("/edges", s.handleEdges)
	s.mux.HandleFunc("/refresh", s.handleRefresh)
	s.mux.HandleFunc("/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.Handle("/metrics", s.reg.Handler())
	if cfg.EnablePprof {
		// Registered on the server's own mux (not http.DefaultServeMux)
		// and outside the admission gate: profiling must work precisely
		// when the query path is saturated.
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s, nil
}

// initMetrics builds the server's metrics registry. Counters the request
// path increments are registered here; values owned elsewhere (cache
// counters, in-flight, generation) are sampled at scrape time through
// gauge/counter funcs. Per-endpoint request counters and latency
// histograms are registered by gated().
func (s *Server) initMetrics() {
	r := metrics.NewRegistry()
	s.reg = r
	s.shed = r.NewCounter("cloudwalker_shed_total",
		"Requests shed with 429 by the admission gate.")
	s.computes = r.NewCounter("cloudwalker_computations_total",
		"Underlying query computations (cache and coalesce misses).")
	s.coalesced = r.NewCounter("cloudwalker_coalesced_total",
		"Requests that piggybacked on another request's computation.")
	s.updates = r.NewCounter("cloudwalker_edge_updates_total",
		"Edge deltas applied through POST /edges.")
	s.swaps = r.NewCounter("cloudwalker_snapshot_swaps_total",
		"Completed compaction hot-swaps.")
	s.snapSaves = r.NewCounter("cloudwalker_snapshots_written_total",
		"Serving snapshots persisted to disk through POST /snapshot.")
	s.walkersSaved = r.NewCounter("cloudwalker_walkers_saved_total",
		"Walkers the adaptive sampling paths avoided running (budget minus launched, summed over both endpoints of pair queries).")
	s.adaptiveStopped = r.NewCounter("cloudwalker_adaptive_stopped_total",
		"Adaptive query computations that stopped before the full walker budget.")
	s.deadlineExceeded = r.NewCounter("cloudwalker_deadline_exceeded_total",
		"Query requests answered 504 because their propagated deadline expired.")
	s.backendQueries = make(map[string]*metrics.Counter, 2)
	for _, b := range []string{BackendMC, BackendLin} {
		s.backendQueries[b] = r.NewCounter("cloudwalker_backend_queries_total",
			"Underlying query computations per answering backend (cache hits excluded).",
			metrics.Label{Key: "backend", Value: b})
	}
	r.NewGaugeFunc("cloudwalker_in_flight",
		"Query requests currently being served.",
		func() float64 { return float64(s.inFlight.Load()) })
	r.NewGaugeFunc("cloudwalker_snapshot_generation",
		"Graph generation of the snapshot currently being served.",
		func() float64 { return float64(s.snaps.Load().Gen) })
	r.NewGaugeFunc("cloudwalker_uptime_seconds",
		"Seconds since the serving tier started.",
		func() float64 { return time.Since(s.start).Seconds() })
	if s.cache != nil {
		r.NewCounterFunc("cloudwalker_cache_hits_total",
			"Result-cache hits.",
			func() float64 { return float64(s.cache.Stats().Hits) })
		r.NewCounterFunc("cloudwalker_cache_misses_total",
			"Result-cache misses.",
			func() float64 { return float64(s.cache.Stats().Misses) })
		r.NewCounterFunc("cloudwalker_cache_evictions_total",
			"Result-cache LRU evictions.",
			func() float64 { return float64(s.cache.Stats().Evictions) })
		r.NewGaugeFunc("cloudwalker_cache_entries",
			"Result-cache entries currently held.",
			func() float64 { return float64(s.cache.Stats().Len) })
		r.NewGaugeFunc("cloudwalker_cache_capacity",
			"Result-cache capacity in entries.",
			func() float64 { return float64(s.cache.Stats().Capacity) })
	}
}

// Metrics returns the server's metrics registry (what /metrics serves).
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Handler returns the root http.Handler (mountable under httptest or an
// http.Server). With Config.ShardName set, every response carries the
// shard's name in ShardHeader.
func (s *Server) Handler() http.Handler {
	if s.shardName == "" {
		return s.mux
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(ShardHeader, s.shardName)
		s.mux.ServeHTTP(w, r)
	})
}

// setGen stamps the generation header on a response. It must run before
// the body is written (headers flush on the first write).
func setGen(w http.ResponseWriter, gen uint64) {
	w.Header().Set(GenHeader, strconv.FormatUint(gen, 10))
}

// gated wraps a query handler with method filtering, the admission gate,
// and latency recording. Health and stats endpoints bypass it: they must
// answer even when the query path is saturated.
func (s *Server) gated(path, method string, h http.HandlerFunc) http.Handler {
	rec := &latencyRecorder{}
	s.latency[path] = rec
	requests := s.reg.NewCounter("cloudwalker_requests_total",
		"Requests received per query endpoint (before admission).",
		metrics.Label{Key: "endpoint", Value: path})
	duration := s.reg.NewHistogram("cloudwalker_request_duration_seconds",
		"Latency of admitted query requests.", nil,
		metrics.Label{Key: "endpoint", Value: path})
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Inc()
		if r.Method != method {
			w.Header().Set("Allow", method)
			writeError(w, http.StatusMethodNotAllowed, "method %s not allowed on %s", r.Method, path)
			return
		}
		// Deadline propagation: timeout= / DeadlineHeader become the
		// request context's deadline, which the walk kernels check at
		// wave boundaries. An already-expired deadline answers 504
		// before consuming an admission slot — under overload, shedding
		// doomed work is the whole point of propagating deadlines.
		if dl, ok, err := ParseDeadline(r, time.Now()); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		} else if ok {
			if !dl.After(time.Now()) {
				s.deadlineExceeded.Inc()
				writeError(w, http.StatusGatewayTimeout, "deadline already expired on arrival")
				return
			}
			ctx, cancel := context.WithDeadline(r.Context(), dl)
			defer cancel()
			r = r.WithContext(ctx)
		}
		if s.gate != nil {
			select {
			case s.gate <- struct{}{}:
				defer func() { <-s.gate }()
			default:
				s.shed.Inc()
				writeError(w, http.StatusTooManyRequests, "server saturated (%d in flight), retry later", cap(s.gate))
				return
			}
		}
		s.inFlight.Add(1)
		start := time.Now()
		// Deferred so a handler panic (recovered by net/http) cannot
		// leak an in-flight count or drop the latency sample.
		defer func() {
			d := time.Since(start)
			rec.observe(d)
			duration.Observe(d.Seconds())
			s.inFlight.Add(-1)
		}()
		h(w, r)
	})
}

// errorBody is the JSON error envelope of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// parseNode reads an integer query parameter and range-checks it against
// the snapshot being served (node counts change across hot-swaps, so the
// check must use the same snapshot the query will run on).
func parseNode(snap *Snapshot, r *http.Request, name string) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing required parameter %q", name)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %q is not an integer", name, raw)
	}
	if n := snap.Q.Graph().NumNodes(); v < 0 || v >= n {
		return 0, fmt.Errorf("node %d out of range [0,%d)", v, n)
	}
	return v, nil
}

// parseAdaptive reads the optional epsilon/delta query parameters.
// Absent parameters inherit the index's build-time defaults (with a 0.05
// delta fallback for indices that predate adaptive sampling), so a daemon
// started with -epsilon serves adaptive answers to plain requests; an
// explicit epsilon=0 forces the fixed-budget path either way.
func parseAdaptive(snap *Snapshot, r *http.Request) (eps, delta float64, err error) {
	opts := snap.Q.Index().Opts
	eps, delta = opts.Epsilon, opts.Delta
	if delta == 0 {
		delta = core.DefaultOptions().Delta
	}
	if raw := r.URL.Query().Get("epsilon"); raw != "" {
		eps, err = strconv.ParseFloat(raw, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("parameter \"epsilon\": %q is not a number", raw)
		}
	}
	if raw := r.URL.Query().Get("delta"); raw != "" {
		delta, err = strconv.ParseFloat(raw, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("parameter \"delta\": %q is not a number", raw)
		}
	}
	return eps, delta, checkAdaptive(eps, delta)
}

// checkAdaptive range-checks an effective (epsilon, delta) so malformed
// requests answer 400 instead of surfacing core's validation as a 500.
func checkAdaptive(eps, delta float64) error {
	if !(eps >= 0 && eps < 1) { // NaN fails too
		return fmt.Errorf("parameter \"epsilon\": %g outside [0,1)", eps)
	}
	if eps > 0 && !(delta > 0 && delta < 1) {
		return fmt.Errorf("parameter \"delta\": %g outside (0,1)", delta)
	}
	return nil
}

// adaptiveSuffix is the cache-key suffix of an adaptive query: the
// effective (epsilon, delta) must be part of the key, or an adaptive
// answer could satisfy a fixed-budget request (and vice versa) for the
// same endpoints. Fixed-budget queries (eps == 0) keep their legacy keys.
func adaptiveSuffix(eps, delta float64) string {
	if eps == 0 {
		return ""
	}
	return "/e" + strconv.FormatFloat(eps, 'g', -1, 64) +
		"/d" + strconv.FormatFloat(delta, 'g', -1, 64)
}

// parseK reads an optional top-k parameter with a default and a cap.
func parseK(r *http.Request, def int) (int, error) {
	raw := r.URL.Query().Get("k")
	if raw == "" {
		return def, nil
	}
	k, err := strconv.Atoi(raw)
	if err != nil || k <= 0 {
		return 0, fmt.Errorf("parameter \"k\": %q is not a positive integer", raw)
	}
	if k > maxTopK {
		k = maxTopK
	}
	return k, nil
}

// cached runs fn under the cache and the singleflight group. Every
// distinct in-flight key computes once; every completed key is served
// from the cache until evicted. ctx is THIS request's context: when a
// coalesced flight fails with the LEADER's context error (its deadline,
// not ours), a caller whose own context is still live retries once as
// the new leader instead of inheriting a failure it didn't earn.
// Context errors never land in the cache (fn only stores on success and
// a cancelled computation returns an error).
func (s *Server) cached(ctx context.Context, key, kind string, fn func() (any, error)) (val any, fromCache bool, err error) {
	if s.cache != nil {
		if v, ok := s.cache.Get(key); ok {
			return v, true, nil
		}
	}
	compute := func() (any, error) {
		if s.testComputeHook != nil {
			s.testComputeHook(kind)
		}
		s.computes.Inc()
		out, err := fn()
		if err == nil && s.cache != nil {
			s.cache.Put(key, out)
		}
		return out, err
	}
	v, shared, err := s.flight.Do(key, compute)
	if shared {
		s.coalesced.Inc()
		if err != nil &&
			(errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)) &&
			ctx.Err() == nil {
			v, _, err = s.flight.Do(key, compute)
		}
	}
	return v, false, err
}

// writeComputeError maps a computation failure to a response: the
// request's own deadline expiring mid-computation (or the client going
// away) is a 504 gateway timeout, anything else a 500.
func (s *Server) writeComputeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.deadlineExceeded.Inc()
		writeError(w, http.StatusGatewayTimeout, "query deadline exceeded")
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusGatewayTimeout, "request cancelled")
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// pairResponse is the /pair reply. Score is the MCSP estimate for the
// canonicalized pair; Cached reports whether it came from the result
// cache (the value is bit-identical either way); Gen is the graph
// generation the estimate was computed against. The adaptive fields are
// present only on adaptive answers (effective epsilon > 0): the
// confidence half-width at the stop point, the walkers actually run per
// endpoint, and whether the query stopped before the full budget.
type pairResponse struct {
	I      int     `json:"i"`
	J      int     `json:"j"`
	Score  float64 `json:"score"`
	Cached bool    `json:"cached"`
	Gen    uint64  `json:"gen"`
	// Backend is the engine that computed (or originally computed, for a
	// cache hit) the score: mc or lin — for auto requests, whichever the
	// router picked.
	Backend   string  `json:"backend"`
	Epsilon   float64 `json:"epsilon,omitempty"`
	HalfWidth float64 `json:"half_width,omitempty"`
	Walkers   int     `json:"walkers,omitempty"`
	Stopped   bool    `json:"stopped,omitempty"`
}

func (s *Server) handlePair(w http.ResponseWriter, r *http.Request) {
	snap := s.snaps.Load()
	i, err := parseNode(snap, r, "i")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j, err := parseNode(snap, r, "j")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	backend, explicitBackend, err := s.parseBackend(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	eps, delta, err := parseAdaptive(snap, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Adaptive sampling is a Monte Carlo notion (there is no walker
	// population to stop early in a series evaluation). An explicit
	// epsilon with an explicit backend=lin is a contradiction → 400; an
	// explicit epsilon under auto (or a lin server default) picks the mc
	// arm; a merely inherited index-default epsilon never breaks a lin
	// request — lin answers are deterministic, so it is ignored.
	if backend != BackendMC && eps > 0 {
		if r.URL.Query().Get("epsilon") != "" {
			if backend == BackendLin && explicitBackend {
				writeError(w, http.StatusBadRequest, "parameter \"epsilon\": adaptive sampling requires backend=mc (the linearized engine is deterministic)")
				return
			}
			backend = BackendMC
		} else if backend == BackendLin {
			eps = 0
		}
	}
	if backend, err = checkBackendAvailable(snap, backend); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ci, cj := core.CanonicalPair(i, j)
	mcKey := pairKey(snap.Gen, ci, cj) + adaptiveSuffix(eps, delta)
	linKey := pairKey(snap.Gen, ci, cj) + backendSuffix(BackendLin)
	backend = s.routeAuto(backend, mcKey, linKey)
	key, compute := mcKey, s.pairCompute(r.Context(), snap, ci, cj, eps, delta)
	if backend == BackendLin {
		key, compute, eps = linKey, s.linPairCompute(snap, ci, cj), 0
	}
	val, hit, err := s.cached(r.Context(), key, "pair", compute)
	if err != nil {
		s.writeComputeError(w, err)
		return
	}
	setGen(w, snap.Gen)
	setBackend(w, backend)
	if eps > 0 {
		pe := val.(core.PairEstimate)
		writeJSON(w, pairResponse{
			I: i, J: j, Score: pe.Score, Cached: hit, Gen: snap.Gen, Backend: backend,
			Epsilon: eps, HalfWidth: pe.HalfWidth, Walkers: pe.Walkers, Stopped: pe.Stopped,
		})
		return
	}
	writeJSON(w, pairResponse{I: i, J: j, Score: val.(float64), Cached: hit, Gen: snap.Gen, Backend: backend})
}

// pairCompute builds the cache compute function for one canonical pair at
// the effective (epsilon, delta). Adaptive computations (eps > 0) store
// the full core.PairEstimate — the /pair handler serves its interval
// fields, and /pairs extracts the score — and account saved walkers once
// per computation (both endpoints save Budget−Walkers each). Fixed-budget
// computations store the bare score under the legacy key, via an explicit
// eps = 0 call so a client's epsilon=0 opt-out forces the fixed path even
// when the index was built with an adaptive default.
func (s *Server) pairCompute(ctx context.Context, snap *Snapshot, ci, cj int, eps, delta float64) func() (any, error) {
	return func() (any, error) {
		pe, err := snap.Q.SinglePairAdaptiveCtx(ctx, ci, cj, eps, delta)
		if err != nil {
			return nil, err
		}
		s.backendQueries[BackendMC].Inc()
		if eps == 0 {
			return pe.Score, nil
		}
		s.walkersSaved.Add(uint64(2 * (pe.Budget - pe.Walkers)))
		if pe.Stopped {
			s.adaptiveStopped.Inc()
		}
		return pe, nil
	}
}

// genKey prefixes a cache/singleflight key with the snapshot generation:
// entries computed against an old snapshot can never answer a query
// against a new one (stale entries age out of the LRU instead of being
// swept). EVERY query key must be built through this helper — an
// unprefixed key would leak answers across hot-swaps.
func genKey(gen uint64, suffix string) string {
	return "g" + strconv.FormatUint(gen, 36) + "/" + suffix
}

// pairKey is the /pair key for a canonicalized pair under a generation.
func pairKey(gen uint64, ci, cj int) string {
	return genKey(gen, "p/"+strconv.Itoa(ci)+"/"+strconv.Itoa(cj))
}

// pairsRequest is the /pairs body; pairsResponse aligns Scores with the
// request's pair order. Epsilon/Delta are optional adaptive-sampling
// targets (pointers so an explicit 0 — "force the fixed budget" — is
// distinguishable from absent — "inherit the index default").
type pairsRequest struct {
	Pairs   [][2]int `json:"pairs"`
	Epsilon *float64 `json:"epsilon,omitempty"`
	Delta   *float64 `json:"delta,omitempty"`
	// Backend chooses the answering engine for the whole batch (mc, lin,
	// or auto; empty inherits the server default). auto routes pair by
	// pair, so one batch may mix engines — Backends in the response
	// reports the per-engine split.
	Backend string `json:"backend,omitempty"`
}

type pairsResponse struct {
	Scores []float64 `json:"scores"`
	Hits   int       `json:"cache_hits"`
	// Gen is the single generation every score in the batch was computed
	// against (the handler pins one snapshot for the whole batch, so a
	// batched response can never mix generations).
	Gen uint64 `json:"gen"`
	// Backends counts how many of the batch's scores each engine
	// answered (cache hits attribute to the engine that computed the
	// entry's key space).
	Backends map[string]int `json:"backends"`
}

// handlePairs serves batched MCSP. Cached pairs are answered from the
// cache; the remainder join the per-pair singleflight group: pairs
// nobody else is computing are batched through Querier.SinglePairs
// (which fans them across worker goroutines) with this request as the
// flight leader, and pairs already in flight — under another batch or a
// concurrent GET /pair — are awaited instead of recomputed. Either way
// every result lands in the cache for later point queries.
func (s *Server) handlePairs(w http.ResponseWriter, r *http.Request) {
	snap := s.snaps.Load()
	var req pairsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	if len(req.Pairs) == 0 {
		writeError(w, http.StatusBadRequest, "empty pair list")
		return
	}
	if len(req.Pairs) > s.maxBatch {
		writeError(w, http.StatusBadRequest, "batch of %d pairs exceeds limit %d", len(req.Pairs), s.maxBatch)
		return
	}
	n := snap.Q.Graph().NumNodes()
	// Validate the whole batch BEFORE leading any flight: a malformed
	// pair must reject only this request, never surface an error to
	// well-formed point queries that coalesced onto a flight this batch
	// opened and then abandoned.
	for idx, p := range req.Pairs {
		if p[0] < 0 || p[0] >= n || p[1] < 0 || p[1] >= n {
			writeError(w, http.StatusBadRequest, "pair %d: node out of range [0,%d): [%d,%d]", idx, n, p[0], p[1])
			return
		}
	}
	backend, err := s.checkBackendName(req.Backend)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts := snap.Q.Index().Opts
	eps, delta := opts.Epsilon, opts.Delta
	if delta == 0 {
		delta = core.DefaultOptions().Delta
	}
	if req.Epsilon != nil {
		eps = *req.Epsilon
	}
	if req.Delta != nil {
		delta = *req.Delta
	}
	if err := checkAdaptive(eps, delta); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Same backend/adaptive conflict rules as GET /pair: an explicit
	// epsilon with an explicitly-requested lin backend is a 400, an
	// explicit epsilon otherwise picks the mc arm, and an inherited
	// index-default epsilon is ignored on lin.
	if backend != BackendMC && eps > 0 {
		if req.Epsilon != nil {
			if backend == BackendLin && req.Backend != "" {
				writeError(w, http.StatusBadRequest, "field \"epsilon\": adaptive sampling requires backend=mc (the linearized engine is deterministic)")
				return
			}
			backend = BackendMC
		} else if backend == BackendLin {
			eps = 0
		}
	}
	if backend, err = checkBackendAvailable(snap, backend); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if backend != BackendMC || eps > 0 || opts.Epsilon > 0 {
		// Adaptive batches (or an explicit fixed-budget override of an
		// adaptive index default) run pair by pair through the same cached
		// compute path as GET /pair: each pair stops on its own confidence
		// bound, so there is no fixed-size batch to fan out, and sharing
		// the point-query key space means batch results serve later point
		// queries and vice versa. Non-mc backends also go pairwise: auto
		// routes each pair on its own popularity, and lin shares the point
		// query key space the same way.
		s.handlePairsPointwise(r.Context(), w, snap, req.Pairs, eps, delta, backend)
		return
	}
	scores := make([]float64, len(req.Pairs))
	hits := 0
	// Request index -> where its score comes from: resolved in scores
	// already, a slot of the led batch, or a foreign flight to await.
	const (
		fromScores = -1
		fromWait   = -2
	)
	slotAt := make([]int, len(req.Pairs))
	waitAt := make([]int, len(req.Pairs))
	var missing [][2]int // canonical pairs this request leads
	var missingKeys []string
	var waits []func() (any, error)
	missSlot := make(map[[2]int]int) // canonical pair -> slotAt/waitAt encoding
	for idx, p := range req.Pairs {
		ci, cj := core.CanonicalPair(p[0], p[1])
		cp := [2]int{ci, cj}
		if enc, dup := missSlot[cp]; dup {
			// Duplicate canonical pair within the batch: share what the
			// first occurrence decided (led slot or awaited flight).
			if enc >= 0 {
				slotAt[idx] = enc
			} else {
				slotAt[idx] = fromWait
				waitAt[idx] = -enc - 3 // invert the waiter encoding below
			}
			continue
		}
		key := pairKey(snap.Gen, ci, cj)
		if s.cache != nil {
			// Cache-hit pairs are not recorded in missSlot: a duplicate
			// re-probes the cache (and lands in the flight logic below on
			// the off chance the entry was evicted in between — the
			// estimator is deterministic per (pair, gen), so both
			// occurrences still answer identically).
			if v, ok := s.cache.Get(key); ok {
				scores[idx] = v.(float64)
				slotAt[idx] = fromScores
				hits++
				continue
			}
		}
		if leader, wait := s.flight.Begin(key); leader {
			slot := len(missing)
			missing = append(missing, cp)
			missingKeys = append(missingKeys, key)
			slotAt[idx] = slot
			missSlot[cp] = slot
		} else {
			s.coalesced.Inc()
			slotAt[idx] = fromWait
			waitAt[idx] = len(waits)
			missSlot[cp] = -len(waits) - 3
			waits = append(waits, wait)
		}
	}
	if len(missing) > 0 {
		out, err := func() (vals []float64, err error) {
			// A panic converts to an error here so the error path below
			// remains the ONE place that lands the led flights — every
			// flight must land or waiters block forever, and it must land
			// exactly once: a second Finish could tear down an unrelated
			// flight opened under the same key in between.
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("server: batch computation panicked: %v", r)
				}
			}()
			if s.testComputeHook != nil {
				s.testComputeHook(fmt.Sprintf("pairs:%d", len(missing)))
			}
			s.computes.Inc()
			s.backendQueries[BackendMC].Add(uint64(len(missing)))
			return snap.Q.SinglePairs(missing)
		}()
		if err != nil {
			for _, key := range missingKeys {
				s.flight.Finish(key, nil, err)
			}
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		for k, cp := range missing {
			if s.cache != nil {
				s.cache.Put(pairKey(snap.Gen, cp[0], cp[1]), out[k])
			}
			s.flight.Finish(missingKeys[k], out[k], nil)
		}
		for idx, slot := range slotAt {
			if slot >= 0 {
				scores[idx] = out[slot]
			}
		}
	}
	if len(waits) > 0 {
		vals := make([]float64, len(waits))
		for k, wait := range waits {
			v, err := wait()
			if err != nil {
				s.writeComputeError(w, err)
				return
			}
			vals[k] = v.(float64)
		}
		for idx, slot := range slotAt {
			if slot == fromWait {
				scores[idx] = vals[waitAt[idx]]
			}
		}
	}
	setGen(w, snap.Gen)
	setBackend(w, BackendMC)
	writeJSON(w, pairsResponse{
		Scores: scores, Hits: hits, Gen: snap.Gen,
		Backends: map[string]int{BackendMC: len(req.Pairs)},
	})
}

// handlePairsPointwise serves a /pairs batch pair by pair through the
// cached point-query path (see the adaptive and non-mc branches of
// handlePairs). backend is the batch-level choice; auto resolves per
// pair, so the response's Backends split may mix engines.
func (s *Server) handlePairsPointwise(ctx context.Context, w http.ResponseWriter, snap *Snapshot, pairs [][2]int, eps, delta float64, backend string) {
	scores := make([]float64, len(pairs))
	hits := 0
	split := make(map[string]int, 2)
	for idx, p := range pairs {
		ci, cj := core.CanonicalPair(p[0], p[1])
		mcKey := pairKey(snap.Gen, ci, cj) + adaptiveSuffix(eps, delta)
		linKey := pairKey(snap.Gen, ci, cj) + backendSuffix(BackendLin)
		pairBackend := s.routeAuto(backend, mcKey, linKey)
		key, compute, pairEps := mcKey, s.pairCompute(ctx, snap, ci, cj, eps, delta), eps
		if pairBackend == BackendLin {
			key, compute, pairEps = linKey, s.linPairCompute(snap, ci, cj), 0
		}
		val, hit, err := s.cached(ctx, key, "pair", compute)
		if err != nil {
			s.writeComputeError(w, err)
			return
		}
		if pairEps > 0 {
			scores[idx] = val.(core.PairEstimate).Score
		} else {
			scores[idx] = val.(float64)
		}
		split[pairBackend]++
		if hit {
			hits++
		}
	}
	setGen(w, snap.Gen)
	// Batches may mix engines under auto; the header carries the batch
	// request's backend, the body the per-engine split.
	setBackend(w, backend)
	writeJSON(w, pairsResponse{Scores: scores, Hits: hits, Gen: snap.Gen, Backends: split})
}

// neighborJSON is one top-k entry on the wire.
type neighborJSON struct {
	Node  int32   `json:"node"`
	Score float64 `json:"score"`
}

// sourceResponse is the /source reply: the k most similar nodes to Node
// (descending score, Node itself excluded). Part echoes the partition
// restriction of a fleet scatter request ("i/N"), empty for a whole-space
// answer.
type sourceResponse struct {
	Node   int    `json:"node"`
	Mode   string `json:"mode"`
	K      int    `json:"k"`
	Part   string `json:"part,omitempty"`
	Cached bool   `json:"cached"`
	Gen    uint64 `json:"gen"`
	// Backend is the engine that computed the answer (mc or lin); Mode
	// stays the walk/pull estimator choice, which only applies to mc.
	Backend string         `json:"backend"`
	Results []neighborJSON `json:"results"`
	// Adaptive fields, present when the effective epsilon > 0 (walk mode
	// only): the per-entry confidence heuristic's half-width at the stop
	// point, walkers actually run, and whether the estimate stopped before
	// the full budget.
	Epsilon   float64 `json:"epsilon,omitempty"`
	HalfWidth float64 `json:"half_width,omitempty"`
	Walkers   int     `json:"walkers,omitempty"`
	Stopped   bool    `json:"stopped,omitempty"`
}

// sourceAdaptiveEntry is the cached value of an adaptive /source answer:
// the truncated top-k plus the stop-point stats the response reports.
type sourceAdaptiveEntry struct {
	results []neighborJSON
	est     core.SourceEstimate
}

// NodePart returns the scatter partition of a node among parts: the fleet
// router splits single-source answers into parts target partitions, each
// computed by one shard (/source with part=i/N), and merges the partial
// top-k lists. The assignment is a stable hash — NOT the consistent-hash
// ring — so it is identical across processes and independent of fleet
// membership order. parts <= 1 puts every node in partition 0.
func NodePart(node int32, parts int) int {
	if parts <= 1 {
		return 0
	}
	// splitmix64 finalizer: adjacent node ids must land on uncorrelated
	// partitions or partition loads would follow graph locality.
	z := uint64(uint32(node)) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(parts))
}

// parsePart reads the optional part=i/N query parameter. Absent yields
// parts == 0 (no restriction).
func parsePart(r *http.Request) (part, parts int, err error) {
	raw := r.URL.Query().Get("part")
	if raw == "" {
		return 0, 0, nil
	}
	slash := strings.IndexByte(raw, '/')
	if slash < 0 {
		return 0, 0, fmt.Errorf("parameter \"part\": want i/N, got %q", raw)
	}
	part, err = strconv.Atoi(raw[:slash])
	if err == nil {
		parts, err = strconv.Atoi(raw[slash+1:])
	}
	if err != nil || parts < 1 || parts > maxParts || part < 0 || part >= parts {
		return 0, 0, fmt.Errorf("parameter \"part\": want i/N with 0 <= i < N <= %d, got %q", maxParts, raw)
	}
	return part, parts, nil
}

// partVector filters v to the nodes of one scatter partition.
func partVector(v *sparse.Vector, part, parts int) *sparse.Vector {
	out := &sparse.Vector{}
	for i, node := range v.Idx {
		if NodePart(node, parts) == part {
			out.Idx = append(out.Idx, node)
			out.Val = append(out.Val, v.Val[i])
		}
	}
	return out
}

func (s *Server) handleSource(w http.ResponseWriter, r *http.Request) {
	snap := s.snaps.Load()
	node, err := parseNode(snap, r, "node")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	backend, explicitBackend, err := s.parseBackend(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	mode := r.URL.Query().Get("mode")
	if mode == "" {
		mode = "walk"
	}
	var ssMode core.SingleSourceMode
	switch mode {
	case "walk":
		ssMode = core.WalkSS
	case "pull":
		ssMode = core.PullSS
	default:
		writeError(w, http.StatusBadRequest, "parameter \"mode\": want walk or pull, got %q", mode)
		return
	}
	if ssMode == core.PullSS && backend != BackendMC {
		// walk/pull selects between the two Monte Carlo estimators; the
		// linearized engine is neither. Naming both pull and lin in one
		// request is a contradiction → 400; an inherited lin/auto default
		// just yields to the explicitly requested pull estimator.
		if explicitBackend && backend == BackendLin {
			writeError(w, http.StatusBadRequest, "parameter \"mode\": the pull estimator requires backend=mc (mode selects between Monte Carlo estimators)")
			return
		}
		backend = BackendMC
	}
	k, err := parseK(r, defaultTopK)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	part, parts, err := parsePart(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	eps, delta, err := parseAdaptive(snap, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if eps > 0 && ssMode != core.WalkSS {
		// The pull estimator has no walker population to stop early; only
		// the walk path is adaptive. An index-default epsilon must not
		// break pull requests, so only an explicit parameter rejects.
		if r.URL.Query().Get("epsilon") != "" {
			writeError(w, http.StatusBadRequest, "parameter \"epsilon\": adaptive sampling requires mode=walk, got %q", mode)
			return
		}
		eps = 0
	}
	// Backend/adaptive conflicts, mirroring GET /pair.
	if backend != BackendMC && eps > 0 {
		if r.URL.Query().Get("epsilon") != "" {
			if backend == BackendLin && explicitBackend {
				writeError(w, http.StatusBadRequest, "parameter \"epsilon\": adaptive sampling requires backend=mc (the linearized engine is deterministic)")
				return
			}
			backend = BackendMC
		} else if backend == BackendLin {
			eps = 0
		}
	}
	if backend, err = checkBackendAvailable(snap, backend); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	suffix, partLabel := "", ""
	if parts > 0 {
		partLabel = strconv.Itoa(part) + "/" + strconv.Itoa(parts)
		suffix = "/pt" + partLabel
	}
	tail := "/" + strconv.Itoa(k) + "/" + strconv.Itoa(node) + suffix
	mcKey := genKey(snap.Gen, "s/"+mode+tail) + adaptiveSuffix(eps, delta)
	// lin occupies its own mode slot in the key space: the same (node, k,
	// part) under lin and mc answer different numbers and must never
	// alias.
	linKey := genKey(snap.Gen, "s/lin"+tail)
	backend = s.routeAuto(backend, mcKey, linKey)
	key := mcKey
	topk := func(v *sparse.Vector) []neighborJSON {
		if parts > 0 {
			// Partition-restricted top-k for a fleet scatter: the walk is
			// the same full single-source estimate (deterministic per
			// (node, gen)); only the candidate set narrows, so the merged
			// partials are bit-identical to a whole-space answer.
			v = partVector(v, part, parts)
		}
		return toNeighborJSON(core.TopKNeighbors(v, node, k))
	}
	if backend == BackendLin {
		val, hit, err := s.cached(r.Context(), linKey, "source", s.linSourceCompute(snap, node, topk))
		if err != nil {
			s.writeComputeError(w, err)
			return
		}
		setGen(w, snap.Gen)
		setBackend(w, backend)
		writeJSON(w, sourceResponse{
			Node: node, Mode: mode, K: k, Part: partLabel, Cached: hit, Gen: snap.Gen,
			Backend: backend, Results: val.([]neighborJSON),
		})
		return
	}
	if eps > 0 {
		val, hit, err := s.cached(r.Context(), key, "source", func() (any, error) {
			v, est, err := snap.Q.SingleSourceAdaptiveCtx(r.Context(), node, eps, delta)
			if err != nil {
				return nil, err
			}
			s.backendQueries[BackendMC].Inc()
			s.walkersSaved.Add(uint64(est.Budget - est.Walkers))
			if est.Stopped {
				s.adaptiveStopped.Inc()
			}
			return sourceAdaptiveEntry{results: topk(v), est: est}, nil
		})
		if err != nil {
			s.writeComputeError(w, err)
			return
		}
		entry := val.(sourceAdaptiveEntry)
		setGen(w, snap.Gen)
		setBackend(w, backend)
		writeJSON(w, sourceResponse{
			Node: node, Mode: mode, K: k, Part: partLabel, Cached: hit, Gen: snap.Gen,
			Backend: backend, Results: entry.results,
			Epsilon: eps, HalfWidth: entry.est.HalfWidth, Walkers: entry.est.Walkers, Stopped: entry.est.Stopped,
		})
		return
	}
	val, hit, err := s.cached(r.Context(), key, "source", func() (any, error) {
		var v *sparse.Vector
		var err error
		if ssMode == core.WalkSS {
			// Explicit eps = 0 call: a client's epsilon=0 opt-out forces
			// the fixed budget even when the index carries an adaptive
			// default, so the legacy key only ever holds fixed answers.
			v, _, err = snap.Q.SingleSourceAdaptiveCtx(r.Context(), node, 0, delta)
		} else {
			v, err = snap.Q.SingleSource(node, ssMode)
		}
		if err != nil {
			return nil, err
		}
		s.backendQueries[BackendMC].Inc()
		return topk(v), nil
	})
	if err != nil {
		s.writeComputeError(w, err)
		return
	}
	setGen(w, snap.Gen)
	setBackend(w, backend)
	writeJSON(w, sourceResponse{
		Node: node, Mode: mode, K: k, Part: partLabel, Cached: hit, Gen: snap.Gen,
		Backend: backend, Results: val.([]neighborJSON),
	})
}

func toNeighborJSON(ns []core.Neighbor) []neighborJSON {
	out := make([]neighborJSON, len(ns))
	for i, nb := range ns {
		out[i] = neighborJSON{Node: nb.Node, Score: nb.Score}
	}
	return out
}

// topkResponse is the /topk reply: a point lookup into the preloaded
// all-pair (MCAP) store.
type topkResponse struct {
	Node    int            `json:"node"`
	K       int            `json:"k"`
	Results []neighborJSON `json:"results"`
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	snap := s.snaps.Load()
	if snap.TopK == nil {
		writeError(w, http.StatusServiceUnavailable, "no similarity store loaded (start the daemon with -store; hot-swaps drop it)")
		return
	}
	node, err := parseNode(snap, r, "node")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	k, err := parseK(r, snap.TopK.K())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	list, err := snap.TopK.Get(node)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(list) > k {
		list = list[:k]
	}
	setGen(w, snap.Gen)
	writeJSON(w, topkResponse{Node: node, K: k, Results: toNeighborJSON(list)})
}

// healthzResponse reports liveness, the served snapshot's shape, and —
// for dynamic servers — the update/compaction state.
type healthzResponse struct {
	Status  string `json:"status"`
	Nodes   int    `json:"nodes"`
	Edges   int    `json:"edges"`
	Store   bool   `json:"store"`
	Dynamic bool   `json:"dynamic"`
	Gen     uint64 `json:"gen"`
	// Backend is the server's default answering engine; Backends lists
	// the engines the CURRENT snapshot can actually serve ("lin" drops
	// out after a hot-swap until re-provisioned).
	Backend  string   `json:"backend"`
	Backends []string `json:"backends"`
	Pending  int      `json:"pending,omitempty"`
	// LinRebuilding reports an in-flight background rebuild of the
	// linearized engine after a hot-swap (Config.RebuildLin): "lin" is
	// temporarily absent from Backends and will flip back in when the
	// rebuild lands.
	LinRebuilding bool `json:"lin_rebuilding,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.snaps.Load()
	resp := healthzResponse{
		Status:   "ok",
		Nodes:    snap.Q.Graph().NumNodes(),
		Edges:    snap.Q.Graph().NumEdges(),
		Store:    snap.TopK != nil,
		Dynamic:  s.dyn != nil,
		Gen:      snap.Gen,
		Backend:  s.defaultBackend,
		Backends: []string{BackendMC},
	}
	if snap.Lin != nil {
		resp.Backends = append(resp.Backends, BackendLin)
	}
	if s.dyn != nil {
		resp.Pending = s.dyn.Pending()
		resp.LinRebuilding = s.linRebuilding.Load()
	}
	setGen(w, snap.Gen)
	setBackend(w, s.defaultBackend)
	writeJSON(w, resp)
}

// Stats is the /stats payload: a point-in-time snapshot of the serving
// counters.
type Stats struct {
	UptimeSeconds float64                 `json:"uptime_seconds"`
	InFlight      int64                   `json:"in_flight"`
	Shed          uint64                  `json:"shed"`
	Computations  uint64                  `json:"computations"`
	Coalesced     uint64                  `json:"coalesced"`
	Updates       uint64                  `json:"updates"`
	Swaps         uint64                  `json:"swaps"`
	WalkersSaved  uint64                  `json:"walkers_saved"`
	Stopped       uint64                  `json:"adaptive_stopped"`
	Gen           uint64                  `json:"gen"`
	Backends      map[string]uint64       `json:"backend_queries"`
	Cache         *CacheStats             `json:"cache,omitempty"`
	Endpoints     map[string]LatencyStats `json:"endpoints"`
}

// StatsSnapshot returns the current serving counters (what /stats serves).
func (s *Server) StatsSnapshot() Stats {
	st := Stats{
		UptimeSeconds: time.Since(s.start).Seconds(),
		InFlight:      s.inFlight.Load(),
		Shed:          s.shed.Value(),
		Computations:  s.computes.Value(),
		Coalesced:     s.coalesced.Value(),
		Updates:       s.updates.Value(),
		Swaps:         s.swaps.Value(),
		WalkersSaved:  s.walkersSaved.Value(),
		Stopped:       s.adaptiveStopped.Value(),
		Gen:           s.snaps.Load().Gen,
		Backends:      make(map[string]uint64, len(s.backendQueries)),
		Endpoints:     make(map[string]LatencyStats, len(s.latency)),
	}
	for b, c := range s.backendQueries {
		st.Backends[b] = c.Value()
	}
	if s.cache != nil {
		cs := s.cache.Stats()
		st.Cache = &cs
	}
	for path, rec := range s.latency {
		st.Endpoints[path] = rec.stats()
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.StatsSnapshot())
}
