package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"cloudwalker/internal/core"
	"cloudwalker/internal/gen"
	"cloudwalker/internal/simstore"
)

// testQuerier builds a small deterministic graph + index once; the suite
// shares it (queriers are read-only and safe for concurrent use).
var (
	tqOnce sync.Once
	tq     *core.Querier
)

func querier(t *testing.T) *core.Querier {
	t.Helper()
	tqOnce.Do(func() {
		g, err := gen.RMAT(300, 2400, gen.DefaultRMAT, 11)
		if err != nil {
			panic(err)
		}
		opts := core.DefaultOptions()
		opts.T = 5
		opts.R = 40
		opts.RPrime = 300
		idx, _, err := core.BuildIndex(g, opts)
		if err != nil {
			panic(err)
		}
		tq, err = core.NewQuerier(g, idx)
		if err != nil {
			panic(err)
		}
	})
	return tq
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(querier(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// getJSON fetches a path, requires the given status, and decodes into v.
func getJSON(t *testing.T, ts *httptest.Server, path string, wantStatus int, v any) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d; body %s", path, resp.StatusCode, wantStatus, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET %s: content type %q, want application/json", path, ct)
	}
	if v != nil {
		if err := json.Unmarshal(body, v); err != nil {
			t.Fatalf("GET %s: decoding %s: %v", path, body, err)
		}
	}
}

func TestPairEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var first pairResponse
	getJSON(t, ts, "/pair?i=10&j=11", http.StatusOK, &first)
	if first.Cached {
		t.Fatal("first query reported cached")
	}
	if first.Score < 0 || first.Score > 1 {
		t.Fatalf("score %g outside [0,1]", first.Score)
	}

	// The repeat must be a hit with a bit-identical score.
	var hit pairResponse
	getJSON(t, ts, "/pair?i=10&j=11", http.StatusOK, &hit)
	if !hit.Cached {
		t.Fatal("repeat query missed the cache")
	}
	if hit.Score != first.Score {
		t.Fatalf("cache hit score %v != miss score %v", hit.Score, first.Score)
	}

	// SimRank is symmetric: the reversed pair shares the cache entry.
	var rev pairResponse
	getJSON(t, ts, "/pair?i=11&j=10", http.StatusOK, &rev)
	if !rev.Cached || rev.Score != first.Score {
		t.Fatalf("reversed pair: cached=%v score=%v, want hit with score %v",
			rev.Cached, rev.Score, first.Score)
	}

	// Self-pair is 1 by definition.
	var self pairResponse
	getJSON(t, ts, "/pair?i=7&j=7", http.StatusOK, &self)
	if self.Score != 1 {
		t.Fatalf("s(7,7) = %v, want 1", self.Score)
	}
}

func TestPairsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Seed the cache with one pair so the batch sees a mixed hit/miss set.
	var single pairResponse
	getJSON(t, ts, "/pair?i=3&j=4", http.StatusOK, &single)

	body := `{"pairs":[[3,4],[5,6],[9,9]]}`
	resp, err := ts.Client().Post(ts.URL+"/pairs", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	var got pairsResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(got.Scores) != 3 {
		t.Fatalf("got %d scores, want 3", len(got.Scores))
	}
	if got.Scores[0] != single.Score {
		t.Fatalf("batch score %v != point score %v for the same pair", got.Scores[0], single.Score)
	}
	if got.Scores[2] != 1 {
		t.Fatalf("self pair scored %v, want 1", got.Scores[2])
	}
	if got.Hits != 1 {
		t.Fatalf("cache_hits = %d, want 1", got.Hits)
	}

	// Point queries must agree bit-for-bit with the batch's fills.
	var after pairResponse
	getJSON(t, ts, "/pair?i=6&j=5", http.StatusOK, &after)
	if !after.Cached || after.Score != got.Scores[1] {
		t.Fatalf("point after batch: cached=%v score=%v, want hit with %v",
			after.Cached, after.Score, got.Scores[1])
	}
}

// TestPairsBatchDedupes: repeated canonical pairs in one batch (same
// order, flipped order) run one estimate, fanned out to every index.
func TestPairsBatchDedupes(t *testing.T) {
	srv, ts := newTestServer(t, Config{CacheSize: -1})
	var kinds []string
	srv.testComputeHook = func(kind string) { kinds = append(kinds, kind) }
	resp, err := ts.Client().Post(ts.URL+"/pairs", "application/json",
		bytes.NewBufferString(`{"pairs":[[20,21],[21,20],[20,21],[22,23]]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got pairsResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(got.Scores) != 4 {
		t.Fatalf("status %d, %d scores", resp.StatusCode, len(got.Scores))
	}
	if got.Scores[0] != got.Scores[1] || got.Scores[0] != got.Scores[2] {
		t.Fatalf("duplicate pairs scored differently: %v", got.Scores)
	}
	// 4 request entries, 2 distinct canonical pairs → one batch of 2.
	if len(kinds) != 1 || kinds[0] != "pairs:2" {
		t.Fatalf("compute hook saw %v, want [pairs:2]", kinds)
	}
}

func TestSourceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	for _, mode := range []string{"walk", "pull"} {
		var got sourceResponse
		getJSON(t, ts, "/source?node=12&k=5&mode="+mode, http.StatusOK, &got)
		if got.Mode != mode || got.K != 5 || got.Node != 12 {
			t.Fatalf("echoed query mismatch: %+v", got)
		}
		if len(got.Results) > 5 {
			t.Fatalf("%d results exceed k=5", len(got.Results))
		}
		for i, nb := range got.Results {
			if nb.Node == 12 {
				t.Fatal("source node listed among its own neighbors")
			}
			if i > 0 && nb.Score > got.Results[i-1].Score {
				t.Fatalf("results not sorted descending at %d", i)
			}
		}
		var again sourceResponse
		getJSON(t, ts, "/source?node=12&k=5&mode="+mode, http.StatusOK, &again)
		if !again.Cached {
			t.Fatal("repeat single-source query missed the cache")
		}
		for i := range got.Results {
			if again.Results[i] != got.Results[i] {
				t.Fatalf("cached result differs at %d: %+v vs %+v", i, again.Results[i], got.Results[i])
			}
		}
	}
}

func TestTopKEndpoint(t *testing.T) {
	q := querier(t)
	store, err := simstore.New(q.Graph().NumNodes(), 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []core.Neighbor{{Node: 9, Score: 0.9}, {Node: 5, Score: 0.5}, {Node: 2, Score: 0.2}}
	if err := store.Set(42, want); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Store: store})

	var got topkResponse
	getJSON(t, ts, "/topk?node=42", http.StatusOK, &got)
	if len(got.Results) != len(want) {
		t.Fatalf("got %d results, want %d", len(got.Results), len(want))
	}
	for i, nb := range got.Results {
		if nb.Node != want[i].Node || nb.Score != want[i].Score {
			t.Fatalf("result %d = %+v, want %+v", i, nb, want[i])
		}
	}

	// k truncates further.
	getJSON(t, ts, "/topk?node=42&k=1", http.StatusOK, &got)
	if len(got.Results) != 1 || got.Results[0].Node != 9 {
		t.Fatalf("k=1 returned %+v", got.Results)
	}

	// Unset node: empty list, not an error.
	getJSON(t, ts, "/topk?node=1", http.StatusOK, &got)
	if len(got.Results) != 0 {
		t.Fatalf("unset node returned %+v", got.Results)
	}

	// Without a store the endpoint is unavailable.
	_, bare := newTestServer(t, Config{})
	var eb errorBody
	getJSON(t, bare, "/topk?node=1", http.StatusServiceUnavailable, &eb)
	if eb.Error == "" {
		t.Fatal("missing error body")
	}
}

func TestHealthzAndStats(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var hz healthzResponse
	getJSON(t, ts, "/healthz", http.StatusOK, &hz)
	if hz.Status != "ok" || hz.Nodes != querier(t).Graph().NumNodes() || hz.Store {
		t.Fatalf("healthz = %+v", hz)
	}

	getJSON(t, ts, "/pair?i=1&j=2", http.StatusOK, nil)
	getJSON(t, ts, "/pair?i=1&j=2", http.StatusOK, nil)
	var st Stats
	getJSON(t, ts, "/stats", http.StatusOK, &st)
	if st.Cache == nil || st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Fatalf("cache stats = %+v", st.Cache)
	}
	if st.Computations != 1 {
		t.Fatalf("computations = %d, want 1", st.Computations)
	}
	lat, ok := st.Endpoints["/pair"]
	if !ok || lat.Count != 2 {
		t.Fatalf("endpoint latency stats = %+v", st.Endpoints)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatch: 4})
	n := querier(t).Graph().NumNodes()
	cases := []struct {
		path   string
		status int
	}{
		{"/pair?i=0", http.StatusBadRequest},                         // missing j
		{"/pair?i=0&j=zap", http.StatusBadRequest},                   // non-integer
		{fmt.Sprintf("/pair?i=0&j=%d", n), http.StatusBadRequest},    // out of range
		{"/pair?i=-1&j=0", http.StatusBadRequest},                    // negative
		{"/source?node=0&mode=teleport", http.StatusBadRequest},      // bad mode
		{"/source?node=0&k=-3", http.StatusBadRequest},               // bad k
		{fmt.Sprintf("/source?node=%d", n+5), http.StatusBadRequest}, // out of range
		{"/pairs", http.StatusMethodNotAllowed},                      // GET on POST route
	}
	for _, tc := range cases {
		var eb errorBody
		getJSON(t, ts, tc.path, tc.status, &eb)
		if eb.Error == "" {
			t.Fatalf("%s: error body missing", tc.path)
		}
	}

	post := func(body string) (int, errorBody) {
		resp, err := ts.Client().Post(ts.URL+"/pairs", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var eb errorBody
		json.NewDecoder(resp.Body).Decode(&eb)
		return resp.StatusCode, eb
	}
	for _, body := range []string{
		"{not json",
		`{"pairs":[]}`,
		`{"pairs":[[0,1],[0,2],[0,3],[0,4],[0,5]]}`, // exceeds MaxBatch=4
		fmt.Sprintf(`{"pairs":[[0,%d]]}`, n),        // out of range
	} {
		status, eb := post(body)
		if status != http.StatusBadRequest || eb.Error == "" {
			t.Fatalf("POST %s: status %d body %+v, want 400 with error", body, status, eb)
		}
	}
}

// TestCoalescing holds the underlying single-source computation open
// while a herd of identical requests arrives, then releases it: exactly
// one Monte Carlo estimate must run, and every response must carry the
// same scores.
func TestCoalescing(t *testing.T) {
	const herd = 8
	// Admission control off: the whole herd must be admitted so it can
	// pile onto one flight (the gate's own behavior is TestShedding's).
	srv, ts := newTestServer(t, Config{MaxInFlight: -1})
	entered := make(chan struct{})
	release := make(chan struct{})
	var hookOnce, releaseOnce sync.Once
	t.Cleanup(func() { releaseOnce.Do(func() { close(release) }) })
	srv.testComputeHook = func(string) {
		hookOnce.Do(func() { close(entered) })
		<-release
	}

	var wg sync.WaitGroup
	responses := make([]sourceResponse, herd)
	errs := make([]error, herd)
	for c := 0; c < herd; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			resp, err := ts.Client().Get(ts.URL + "/source?node=33&k=5")
			if err != nil {
				errs[c] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[c] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			errs[c] = json.NewDecoder(resp.Body).Decode(&responses[c])
		}(c)
	}

	<-entered
	// Wait until every other request has joined the executor's flight
	// (nothing is cached while it blocks, so they all must), then release
	// the one computation.
	deadline := time.Now().Add(5 * time.Second)
	for srv.flight.pendingWaiters("g0/s/walk/5/33") < herd-1 {
		if time.Now().After(deadline) {
			t.Fatalf("herd never assembled: %d waiters",
				srv.flight.pendingWaiters("g0/s/walk/5/33"))
		}
		time.Sleep(time.Millisecond)
	}
	releaseOnce.Do(func() { close(release) })
	wg.Wait()

	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}
	if got := srv.computes.Value(); got != 1 {
		t.Fatalf("herd of %d triggered %d computations, want 1", herd, got)
	}
	if got := srv.coalesced.Value(); got != herd-1 {
		t.Fatalf("coalesced = %d, want %d", got, herd-1)
	}
	for c := 1; c < herd; c++ {
		if len(responses[c].Results) != len(responses[0].Results) {
			t.Fatalf("client %d got %d results, client 0 got %d",
				c, len(responses[c].Results), len(responses[0].Results))
		}
		for i := range responses[c].Results {
			if responses[c].Results[i] != responses[0].Results[i] {
				t.Fatalf("client %d result %d differs", c, i)
			}
		}
	}
}

// TestShedding saturates a MaxInFlight=1 server with one blocked request
// and checks that the next request is shed with 429 while /stats (which
// bypasses the gate) still answers and counts the shed.
func TestShedding(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxInFlight: 1})
	entered := make(chan struct{})
	release := make(chan struct{})
	var hookOnce, releaseOnce sync.Once
	t.Cleanup(func() { releaseOnce.Do(func() { close(release) }) })
	srv.testComputeHook = func(string) {
		hookOnce.Do(func() { close(entered) })
		<-release
	}

	done := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Get(ts.URL + "/pair?i=1&j=2")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("blocked request finished with status %d", resp.StatusCode)
			}
		}
		done <- err
	}()
	<-entered

	var eb errorBody
	getJSON(t, ts, "/pair?i=5&j=6", http.StatusTooManyRequests, &eb)
	if eb.Error == "" {
		t.Fatal("shed response missing error body")
	}

	var st Stats
	getJSON(t, ts, "/stats", http.StatusOK, &st)
	if st.Shed != 1 {
		t.Fatalf("shed counter = %d, want 1", st.Shed)
	}
	if st.InFlight != 1 {
		t.Fatalf("in_flight = %d, want 1", st.InFlight)
	}

	releaseOnce.Do(func() { close(release) })
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	q := querier(t)
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("nil querier accepted")
	}
	if _, err := New(q, Config{MaxBatch: -1}); err == nil {
		t.Fatal("negative max batch accepted")
	}
	store, err := simstore.New(q.Graph().NumNodes()+1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(q, Config{Store: store}); err == nil {
		t.Fatal("store/graph node-count mismatch accepted")
	}
}

// TestCacheDisabled checks the uncached arm used by the serving
// benchmark: every request recomputes, none report cached.
func TestCacheDisabled(t *testing.T) {
	srv, ts := newTestServer(t, Config{CacheSize: -1})
	var a, b pairResponse
	getJSON(t, ts, "/pair?i=1&j=2", http.StatusOK, &a)
	getJSON(t, ts, "/pair?i=1&j=2", http.StatusOK, &b)
	if a.Cached || b.Cached {
		t.Fatal("cache-disabled server reported a cache hit")
	}
	if a.Score != b.Score {
		t.Fatalf("deterministic estimator returned %v then %v", a.Score, b.Score)
	}
	if got := srv.computes.Value(); got != 2 {
		t.Fatalf("computations = %d, want 2", got)
	}
	var st Stats
	getJSON(t, ts, "/stats", http.StatusOK, &st)
	if st.Cache != nil {
		t.Fatal("stats reported cache counters with caching disabled")
	}
}

func TestPprofDisabledByDefault(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := ts.Client().Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/pprof/ without EnablePprof: status %d, want 404", resp.StatusCode)
	}
}

func TestPprofEnabled(t *testing.T) {
	_, ts := newTestServer(t, Config{EnablePprof: true})
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/heap?debug=1"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestPairsBatchJoinsPointFlight pins the per-pair singleflight
// integration of POST /pairs: a batch containing a pair that a GET
// /pair is already computing must NOT recompute it — the batch leads
// only its fresh pairs and awaits the point query's flight for the
// shared one, and both answers are bit-identical.
func TestPairsBatchJoinsPointFlight(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxInFlight: -1})
	entered := make(chan struct{})
	release := make(chan struct{})
	var hookOnce, releaseOnce sync.Once
	t.Cleanup(func() { releaseOnce.Do(func() { close(release) }) })
	srv.testComputeHook = func(kind string) {
		// Hold only the point query's computation open; the batch's own
		// computation (kind "pairs:N") must run through.
		if kind == "pair" {
			hookOnce.Do(func() { close(entered) })
			<-release
		}
	}

	var pointResp pairResponse
	var pointErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := ts.Client().Get(ts.URL + "/pair?i=20&j=21")
		if err != nil {
			pointErr = err
			return
		}
		defer resp.Body.Close()
		pointErr = json.NewDecoder(resp.Body).Decode(&pointResp)
	}()
	<-entered

	// The batch lists the in-flight pair in reversed order (canonical
	// form must still match the flight) plus one fresh pair.
	var batchResp pairsResponse
	var batchErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := ts.Client().Post(ts.URL+"/pairs", "application/json",
			bytes.NewBufferString(`{"pairs":[[21,20],[22,23]]}`))
		if err != nil {
			batchErr = err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			batchErr = fmt.Errorf("status %d", resp.StatusCode)
			return
		}
		batchErr = json.NewDecoder(resp.Body).Decode(&batchResp)
	}()

	// The batch must register as a waiter on the point query's flight
	// before we release it.
	deadline := time.Now().Add(5 * time.Second)
	for srv.flight.pendingWaiters("g0/p/20/21") < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("batch never joined the point flight: %d waiters",
				srv.flight.pendingWaiters("g0/p/20/21"))
		}
		time.Sleep(time.Millisecond)
	}
	releaseOnce.Do(func() { close(release) })
	wg.Wait()

	if pointErr != nil || batchErr != nil {
		t.Fatalf("point err %v, batch err %v", pointErr, batchErr)
	}
	if batchResp.Scores[0] != pointResp.Score {
		t.Fatalf("coalesced batch score %v != point score %v", batchResp.Scores[0], pointResp.Score)
	}
	// Two underlying computations: the point pair (led by /pair) and the
	// fresh pair (led by the batch). The shared pair was coalesced.
	if got := srv.computes.Value(); got != 2 {
		t.Fatalf("%d computations, want 2", got)
	}
	if got := srv.coalesced.Value(); got != 1 {
		t.Fatalf("%d coalesced, want 1", got)
	}
	if batchResp.Hits != 0 {
		t.Fatalf("batch reported %d cache hits, want 0 (it waited on a flight)", batchResp.Hits)
	}
}

// TestPairJoinsBatchFlight is the reverse direction: a GET /pair for a
// pair that a /pairs batch is currently computing coalesces onto the
// batch's flight instead of recomputing.
func TestPairJoinsBatchFlight(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxInFlight: -1})
	entered := make(chan struct{})
	release := make(chan struct{})
	var hookOnce, releaseOnce sync.Once
	t.Cleanup(func() { releaseOnce.Do(func() { close(release) }) })
	srv.testComputeHook = func(kind string) {
		if kind == "pairs:2" {
			hookOnce.Do(func() { close(entered) })
			<-release
		}
	}

	var batchResp pairsResponse
	var batchErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := ts.Client().Post(ts.URL+"/pairs", "application/json",
			bytes.NewBufferString(`{"pairs":[[30,31],[32,33]]}`))
		if err != nil {
			batchErr = err
			return
		}
		defer resp.Body.Close()
		batchErr = json.NewDecoder(resp.Body).Decode(&batchResp)
	}()
	<-entered

	var pointResp pairResponse
	var pointErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := ts.Client().Get(ts.URL + "/pair?i=30&j=31")
		if err != nil {
			pointErr = err
			return
		}
		defer resp.Body.Close()
		pointErr = json.NewDecoder(resp.Body).Decode(&pointResp)
	}()

	deadline := time.Now().Add(5 * time.Second)
	for srv.flight.pendingWaiters("g0/p/30/31") < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("point query never joined the batch flight: %d waiters",
				srv.flight.pendingWaiters("g0/p/30/31"))
		}
		time.Sleep(time.Millisecond)
	}
	releaseOnce.Do(func() { close(release) })
	wg.Wait()

	if pointErr != nil || batchErr != nil {
		t.Fatalf("point err %v, batch err %v", pointErr, batchErr)
	}
	if pointResp.Score != batchResp.Scores[0] {
		t.Fatalf("point score %v != batch score %v", pointResp.Score, batchResp.Scores[0])
	}
	if got := srv.computes.Value(); got != 1 {
		t.Fatalf("%d computations, want 1 (the batch)", got)
	}
	if got := srv.coalesced.Value(); got != 1 {
		t.Fatalf("%d coalesced, want 1 (the point query)", got)
	}
}

// TestPairsRejectedBatchLeavesNoFlight: a batch that fails validation
// midway must not have led (and then error-finished) flights for its
// earlier valid pairs — a following point query for one of those pairs
// must compute normally instead of inheriting a rejection error.
func TestPairsRejectedBatchLeavesNoFlight(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	resp, err := ts.Client().Post(ts.URL+"/pairs", "application/json",
		bytes.NewBufferString(`{"pairs":[[40,41],[0,999999]]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed batch: status %d, want 400", resp.StatusCode)
	}
	if got := srv.flight.pendingWaiters("g0/p/40/41"); got != 0 {
		t.Fatalf("rejected batch left a flight with %d waiters", got)
	}
	var pr pairResponse
	getJSON(t, ts, "/pair?i=40&j=41", http.StatusOK, &pr)
	if pr.Score < 0 || pr.Score > 1 {
		t.Fatalf("score %g outside [0,1]", pr.Score)
	}
	if got := srv.computes.Value(); got != 1 {
		t.Fatalf("%d computations, want 1 (the rejected batch must compute nothing)", got)
	}
}
