package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
)

// TestNodePart: the scatter partition function is total, stable, and
// reasonably balanced (it feeds the fleet's scatter-gather, where a
// skewed partition would turn one shard into the straggler of every
// scatter).
func TestNodePart(t *testing.T) {
	if NodePart(42, 1) != 0 || NodePart(42, 0) != 0 {
		t.Fatal("parts <= 1 must map everything to partition 0")
	}
	for _, parts := range []int{2, 3, 5, 8} {
		counts := make([]int, parts)
		for n := int32(0); n < 10000; n++ {
			p := NodePart(n, parts)
			if p < 0 || p >= parts {
				t.Fatalf("NodePart(%d, %d) = %d out of range", n, parts, p)
			}
			counts[p]++
		}
		mean := 10000.0 / float64(parts)
		for p, c := range counts {
			if r := float64(c) / mean; r < 0.85 || r > 1.15 {
				t.Errorf("parts=%d: partition %d holds %d nodes = %.2fx the uniform share", parts, p, c, r)
			}
		}
	}
}

// TestSourcePartMergeBitIdentical: merging the per-partition top-k lists
// of /source?part=i/N reproduces the unrestricted /source answer
// bit-for-bit — the property the fleet router's partitioned scatter-gather
// rests on.
func TestSourcePartMergeBitIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const node, k, parts = 7, 15, 3

	var whole sourceResponse
	getJSON(t, ts, "/source?node=7&k=15", http.StatusOK, &whole)

	var merged []neighborJSON
	for p := 0; p < parts; p++ {
		var partial sourceResponse
		getJSON(t, ts, fmt.Sprintf("/source?node=%d&k=%d&part=%d/%d", node, k, p, parts), http.StatusOK, &partial)
		if partial.Part == "" || partial.Gen != whole.Gen {
			t.Fatalf("partial %d: part=%q gen=%d, want labeled part at gen %d", p, partial.Part, partial.Gen, whole.Gen)
		}
		for _, nb := range partial.Results {
			if NodePart(nb.Node, parts) != p {
				t.Fatalf("partial %d returned node %d of partition %d", p, nb.Node, NodePart(nb.Node, parts))
			}
		}
		merged = append(merged, partial.Results...)
	}
	// The router's merge: score descending, node ascending on ties —
	// the same total order core.TopKNeighbors selects under.
	sort.SliceStable(merged, func(i, j int) bool {
		if merged[i].Score != merged[j].Score {
			return merged[i].Score > merged[j].Score
		}
		return merged[i].Node < merged[j].Node
	})
	if len(merged) > k {
		merged = merged[:k]
	}
	if len(merged) != len(whole.Results) {
		t.Fatalf("merged %d results, whole answer has %d", len(merged), len(whole.Results))
	}
	for i := range merged {
		if merged[i] != whole.Results[i] {
			t.Fatalf("result %d: merged %+v != whole %+v", i, merged[i], whole.Results[i])
		}
	}
}

// TestSourcePartRejectsMalformed: bad part parameters are 400s, never
// silently unfiltered answers (a fleet merge would double-count).
func TestSourcePartRejectsMalformed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, part := range []string{"x", "1", "2/2", "-1/2", "1/0", "1/9999", "a/b"} {
		var e struct {
			Error string `json:"error"`
		}
		getJSON(t, ts, "/source?node=1&part="+part, http.StatusBadRequest, &e)
		if e.Error == "" {
			t.Fatalf("part=%q: empty error body", part)
		}
	}
}

// TestGenAndShardHeaders: query responses carry the generation header,
// and a named shard stamps every response with its name.
func TestGenAndShardHeaders(t *testing.T) {
	srv, err := New(querier(t), Config{ShardName: "shard-a"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	for _, path := range []string{"/pair?i=1&j=2", "/source?node=3&k=5", "/healthz"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got := resp.Header.Get(GenHeader); got != "0" {
			t.Fatalf("GET %s: %s = %q, want \"0\" (static server)", path, GenHeader, got)
		}
		if got := resp.Header.Get(ShardHeader); got != "shard-a" {
			t.Fatalf("GET %s: %s = %q, want \"shard-a\"", path, ShardHeader, got)
		}
	}
}

// TestPairsResponseCarriesGen: a batched response reports the single
// snapshot generation all its scores came from.
func TestPairsResponseCarriesGen(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var pr pairsResponse
	postJSON(t, ts, "/pairs", `{"pairs":[[1,2],[3,4]]}`, http.StatusOK, &pr)
	if len(pr.Scores) != 2 || pr.Gen != 0 {
		t.Fatalf("pairs response %+v, want 2 scores at gen 0", pr)
	}
}

// TestSourcePartCacheKeysDistinct: a partition-restricted answer must
// never be served from the whole-space cache entry or vice versa.
func TestSourcePartCacheKeysDistinct(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var whole, part sourceResponse
	getJSON(t, ts, "/source?node=9&k=5", http.StatusOK, &whole)
	getJSON(t, ts, "/source?node=9&k=5&part=0/2", http.StatusOK, &part)
	if part.Cached {
		t.Fatal("partitioned request was served from the whole-space cache entry")
	}
	for _, nb := range part.Results {
		if NodePart(nb.Node, 2) != 0 {
			t.Fatalf("partitioned result leaked node %d from the other partition", nb.Node)
		}
	}
	getJSON(t, ts, "/source?node=9&k=5&part=0/2", http.StatusOK, &part)
	if !part.Cached {
		t.Fatal("repeated partitioned request missed the cache")
	}
}
