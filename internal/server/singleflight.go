package server

import (
	"fmt"
	"sync"
)

// flightGroup coalesces concurrent duplicate work: while one goroutine
// computes the value for a key, later callers with the same key wait for
// that result instead of recomputing. A thundering herd on one hot query
// therefore costs one Monte Carlo estimate, not N. (Same contract as
// golang.org/x/sync/singleflight, reimplemented here because the module
// is dependency-free.)
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	wg      sync.WaitGroup
	val     any
	err     error
	waiters int // callers sharing this flight (guarded by flightGroup.mu)
}

// Do runs fn once per concurrent set of callers sharing key. It returns
// fn's result and whether this caller shared another caller's execution.
func (g *flightGroup) Do(key string, fn func() (any, error)) (val any, shared bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		c.waiters++
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, true, c.err
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	// The flight must land (map cleanup + wg.Done) even if fn panics:
	// otherwise every later caller for this key would block forever on a
	// dead flight, each holding an admission slot until the whole query
	// path wedges. A panic is surfaced to all callers as an error.
	func() {
		defer func() {
			if r := recover(); r != nil {
				c.err = fmt.Errorf("server: computation for %q panicked: %v", key, r)
			}
			g.mu.Lock()
			delete(g.m, key)
			g.mu.Unlock()
			c.wg.Done()
		}()
		c.val, c.err = fn()
	}()
	return c.val, false, c.err
}

// Begin registers the caller as the leader for key, or — when another
// computation for key is already in flight — returns a wait function
// that blocks until that flight lands and returns its result. A leader
// MUST eventually call Finish with the key, even on error or panic,
// or every later caller for the key blocks forever. Begin/Finish
// flights and Do flights share the same key space, so a batch endpoint
// leading many keys coalesces with point lookups running through Do.
func (g *flightGroup) Begin(key string) (leader bool, wait func() (any, error)) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		c.waiters++
		g.mu.Unlock()
		return false, func() (any, error) {
			c.wg.Wait()
			return c.val, c.err
		}
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()
	return true, nil
}

// Finish lands a flight started with Begin, delivering (val, err) to
// every waiter. Finishing a key with no open flight is a no-op (the
// error path may finish a batch's keys defensively).
func (g *flightGroup) Finish(key string, val any, err error) {
	g.mu.Lock()
	c, ok := g.m[key]
	if ok {
		delete(g.m, key)
	}
	g.mu.Unlock()
	if !ok {
		return
	}
	c.val, c.err = val, err
	c.wg.Done()
}

// pendingWaiters reports how many callers are currently sharing key's
// in-flight computation (0 when no flight is up). Tests use it to
// assemble a herd deterministically before releasing a blocked flight.
func (g *flightGroup) pendingWaiters(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.m[key]; ok {
		return c.waiters
	}
	return 0
}
