package server

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlightGroupCoalesces blocks one computation while a herd piles onto
// its key: the function must run once and every caller must see its
// result, with all but the executor reporting shared.
func TestFlightGroupCoalesces(t *testing.T) {
	const herd = 16
	var g flightGroup
	var calls atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})

	var wg sync.WaitGroup
	vals := make([]any, herd)
	shared := make([]bool, herd)
	spawn := func(c int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, sh, err := g.Do("key", func() (any, error) {
				close(started)
				calls.Add(1)
				<-release
				return "result", nil
			})
			if err != nil {
				t.Errorf("client %d: %v", c, err)
			}
			vals[c], shared[c] = v, sh
		}()
	}
	// One executor first; once it is inside fn, the rest of the herd
	// joins and must pile onto the same in-flight call before release.
	spawn(0)
	<-started
	for c := 1; c < herd; c++ {
		spawn(c)
	}
	deadline := time.Now().Add(5 * time.Second)
	for g.pendingWaiters("key") < herd-1 {
		if time.Now().After(deadline) {
			t.Fatalf("herd never assembled: %d waiters", g.pendingWaiters("key"))
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	executors := 0
	for c := 0; c < herd; c++ {
		if vals[c] != "result" {
			t.Fatalf("client %d got %v", c, vals[c])
		}
		if !shared[c] {
			executors++
		}
	}
	if executors != 1 {
		t.Fatalf("%d callers claim to have executed, want 1", executors)
	}
}

// TestFlightGroupKeysIndependent: different keys never coalesce, and a
// key computes again once its previous flight lands (errors propagate to
// the whole flight but are not cached).
func TestFlightGroupKeysIndependent(t *testing.T) {
	var g flightGroup
	a, _, _ := g.Do("a", func() (any, error) { return 1, nil })
	b, _, _ := g.Do("b", func() (any, error) { return 2, nil })
	if a.(int) == b.(int) {
		t.Fatal("distinct keys shared a result")
	}
	if _, _, err := g.Do("a", func() (any, error) { return nil, fmt.Errorf("boom") }); err == nil {
		t.Fatal("error not propagated")
	}
	v, _, err := g.Do("a", func() (any, error) { return 3, nil })
	if err != nil || v.(int) != 3 {
		t.Fatalf("key did not recompute after flight landed: %v, %v", v, err)
	}
}

// TestFlightGroupPanicSafe: a panicking fn must land the flight (so the
// key is reusable) and surface as an error to the executor — a wedged
// key would leak admission slots forever in the server.
func TestFlightGroupPanicSafe(t *testing.T) {
	var g flightGroup
	_, _, err := g.Do("k", func() (any, error) { panic("boom") })
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panic surfaced as %v, want panicked error", err)
	}
	v, _, err := g.Do("k", func() (any, error) { return 7, nil })
	if err != nil || v.(int) != 7 {
		t.Fatalf("key unusable after panic: %v, %v", v, err)
	}
}
