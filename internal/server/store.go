package server

import (
	"sync/atomic"

	"cloudwalker/internal/core"
	"cloudwalker/internal/linserve"
	"cloudwalker/internal/simstore"
)

// Snapshot is one immutable serving state: a compacted graph bound to
// its querier, the generation that graph content corresponds to, and the
// optional precomputed all-pair store. Handlers load one snapshot at
// request start and use it throughout, so a hot-swap mid-request is
// invisible: the request finishes on the state it started with, and the
// next request sees the new one.
type Snapshot struct {
	// Gen identifies the graph content (graph.Dynamic's generation
	// counter; 0 for a static server). Cache and singleflight keys are
	// prefixed with it, so entries computed against an older snapshot
	// can never answer a query against a newer one.
	Gen uint64
	// Q answers queries against the snapshot's graph.
	Q *core.Querier
	// TopK is the optional precomputed all-pair store. It is only ever
	// populated on the initial snapshot: a hot-swap drops it, because
	// MCAP results precomputed for an older graph would be silently
	// stale (the /topk endpoint then answers 503 until re-provisioned).
	TopK *simstore.Store
	// Lin is the optional linearized engine (precomputed diagonal +
	// truncated-series evaluation) answering backend=lin queries. Like
	// TopK it is dropped on hot-swap: its diagonal was solved for the old
	// graph, so after a swap explicit lin requests answer 400 and the
	// auto router degrades to Monte Carlo until re-provisioned.
	Lin *linserve.Engine
}

// Store holds the server's current Snapshot behind an atomic pointer and
// is the hot-swap point of the dynamic-graph flow: a background
// compaction builds the next snapshot off to the side, then Swap flips
// queries over to it in one atomic store. In-flight requests keep the
// snapshot pointer they loaded, so nothing is dropped or torn.
type Store struct {
	cur atomic.Pointer[Snapshot]
}

// NewStore returns a Store serving the given initial snapshot.
func NewStore(initial *Snapshot) *Store {
	s := &Store{}
	s.cur.Store(initial)
	return s
}

// Load returns the current snapshot.
func (s *Store) Load() *Snapshot { return s.cur.Load() }

// Swap atomically installs next as the current snapshot and returns the
// previous one (which stays valid for requests still holding it).
func (s *Store) Swap(next *Snapshot) *Snapshot { return s.cur.Swap(next) }

// SetLin attaches a linearized engine to the snapshot currently being
// served, but only if that snapshot is still generation gen and has no
// engine yet. Background lin rebuilds use it to flip their result in
// after an asynchronous diagonal solve: a rebuild overtaken by another
// hot-swap fails the generation check and is discarded, so an engine
// can never be bound to a graph it wasn't solved for. The flip installs
// a COPY of the snapshot (requests hold loaded pointers; mutating a
// published snapshot would race). Reports whether the engine went live.
func (s *Store) SetLin(gen uint64, lin *linserve.Engine) bool {
	for {
		cur := s.cur.Load()
		if cur.Gen != gen || cur.Lin != nil {
			return false
		}
		next := *cur
		next.Lin = lin
		if s.cur.CompareAndSwap(cur, &next) {
			return true
		}
	}
}
