// Package simstore persists the output of all-pair (MCAP) jobs: one
// top-k similarity list per node. The paper's MCAP is an offline batch
// computation (O(n·T²·R'·log d)); its product — "the k most similar nodes
// for every node" — is what a recommender or related-pages backend
// actually serves, so it needs a compact on-disk artifact with cheap
// point lookups after loading.
//
// The format stores scores as float32: SimRank scores live in [0,1] and
// Monte Carlo error dominates float32 rounding, so the halved footprint
// is free accuracy-wise (the same argument the paper uses for running
// with R' rather than exhaustive walks).
package simstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync"

	"cloudwalker/internal/core"
)

// Store holds per-node top-k similarity lists. It is safe for concurrent
// use: lookups take a read lock, so a serving tier can answer point
// queries from many goroutines while a background job installs or merges
// lists. The common production shape — Load once, Get forever — runs with
// zero write-lock contention.
type Store struct {
	mu    sync.RWMutex
	k     int
	lists [][]core.Neighbor
}

// New creates an empty store for n nodes with lists of at most k entries.
func New(n, k int) (*Store, error) {
	if n < 0 {
		return nil, fmt.Errorf("simstore: negative node count %d", n)
	}
	if k <= 0 {
		return nil, fmt.Errorf("simstore: top-k must be positive, got %d", k)
	}
	return &Store{k: k, lists: make([][]core.Neighbor, n)}, nil
}

// FromResults wraps the output of Querier.AllPairsTopK.
func FromResults(results [][]core.Neighbor, k int) (*Store, error) {
	s, err := New(len(results), k)
	if err != nil {
		return nil, err
	}
	for i, lst := range results {
		if err := s.Set(i, lst); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// NumNodes returns the node count.
func (s *Store) NumNodes() int { return len(s.lists) }

// K returns the per-node list capacity.
func (s *Store) K() int { return s.k }

// Set installs node i's list (sorted by descending score; truncated to k).
func (s *Store) Set(i int, list []core.Neighbor) error {
	if i < 0 || i >= len(s.lists) {
		return fmt.Errorf("simstore: node %d out of range [0,%d)", i, len(s.lists))
	}
	cp := make([]core.Neighbor, len(list))
	copy(cp, list)
	sort.SliceStable(cp, func(a, b int) bool { return cp[a].Score > cp[b].Score })
	if len(cp) > s.k {
		cp = cp[:s.k]
	}
	s.mu.Lock()
	s.lists[i] = cp
	s.mu.Unlock()
	return nil
}

// Get returns node i's list (nil if unset). The returned slice must not
// be modified: Set and Merge replace lists wholesale rather than mutating
// them, so a slice handed out here stays valid (a frozen snapshot) even if
// the entry is concurrently replaced.
func (s *Store) Get(i int) ([]core.Neighbor, error) {
	if i < 0 || i >= len(s.lists) {
		return nil, fmt.Errorf("simstore: node %d out of range [0,%d)", i, len(s.lists))
	}
	s.mu.RLock()
	lst := s.lists[i]
	s.mu.RUnlock()
	return lst, nil
}

// Merge folds another store into this one, keeping the k best-scoring
// entries per node (deduplicated by node id, max score wins). It is how
// partitioned MCAP jobs combine their shards.
func (s *Store) Merge(other *Store) error {
	if other.NumNodes() != s.NumNodes() {
		return fmt.Errorf("simstore: merging %d-node store into %d-node store",
			other.NumNodes(), s.NumNodes())
	}
	// Snapshot other's list headers under its own lock, then release it
	// before taking s's: never holding both locks rules out AB-BA
	// deadlock when two stores merge into each other concurrently. The
	// headers stay valid after release because lists are replaced
	// wholesale, never mutated; a Set racing this Merge lands either
	// before or after the snapshot, both fine.
	theirs := make([][]core.Neighbor, len(other.lists))
	other.mu.RLock()
	copy(theirs, other.lists)
	other.mu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.lists {
		if len(theirs[i]) == 0 {
			continue
		}
		best := make(map[int32]float64, len(s.lists[i])+len(theirs[i]))
		for _, nb := range s.lists[i] {
			best[nb.Node] = nb.Score
		}
		for _, nb := range theirs[i] {
			if sc, ok := best[nb.Node]; !ok || nb.Score > sc {
				best[nb.Node] = nb.Score
			}
		}
		merged := make([]core.Neighbor, 0, len(best))
		for node, score := range best {
			merged = append(merged, core.Neighbor{Node: node, Score: score})
		}
		sort.Slice(merged, func(a, b int) bool {
			if merged[a].Score != merged[b].Score {
				return merged[a].Score > merged[b].Score
			}
			return merged[a].Node < merged[b].Node
		})
		if len(merged) > s.k {
			merged = merged[:s.k]
		}
		s.lists[i] = merged
	}
	return nil
}

const (
	storeMagic   = 0x43575353 // "CWSS"
	storeVersion = 1
)

// Save writes the store in the compact binary format.
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	bw := bufio.NewWriter(w)
	header := []uint64{storeMagic, storeVersion, uint64(len(s.lists)), uint64(s.k)}
	for _, h := range header {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return fmt.Errorf("simstore: writing header: %v", err)
		}
	}
	for _, lst := range s.lists {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(lst))); err != nil {
			return fmt.Errorf("simstore: writing list length: %v", err)
		}
		for _, nb := range lst {
			if err := binary.Write(bw, binary.LittleEndian, nb.Node); err != nil {
				return err
			}
			if err := binary.Write(bw, binary.LittleEndian, float32(nb.Score)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Load reads a store written by Save.
func Load(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	var header [4]uint64
	for i := range header {
		if err := binary.Read(br, binary.LittleEndian, &header[i]); err != nil {
			return nil, fmt.Errorf("simstore: reading header: %v", err)
		}
	}
	if header[0] != storeMagic {
		return nil, fmt.Errorf("simstore: bad magic %#x", header[0])
	}
	if header[1] != storeVersion {
		return nil, fmt.Errorf("simstore: unsupported version %d", header[1])
	}
	n, k := int(header[2]), int(header[3])
	s, err := New(n, k)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		var length uint32
		if err := binary.Read(br, binary.LittleEndian, &length); err != nil {
			return nil, fmt.Errorf("simstore: reading node %d: %v", i, err)
		}
		if int(length) > k {
			return nil, fmt.Errorf("simstore: node %d list length %d exceeds k=%d", i, length, k)
		}
		lst := make([]core.Neighbor, length)
		for j := range lst {
			var node int32
			var score float32
			if err := binary.Read(br, binary.LittleEndian, &node); err != nil {
				return nil, err
			}
			if err := binary.Read(br, binary.LittleEndian, &score); err != nil {
				return nil, err
			}
			if node < 0 || int(node) >= n {
				return nil, fmt.Errorf("simstore: node %d references out-of-range %d", i, node)
			}
			lst[j] = core.Neighbor{Node: node, Score: float64(score)}
		}
		s.lists[i] = lst
	}
	return s, nil
}
