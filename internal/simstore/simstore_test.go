package simstore

import (
	"bytes"
	"encoding/binary"
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"cloudwalker/internal/core"
	"cloudwalker/internal/xrand"
)

func nb(node int, score float64) core.Neighbor {
	return core.Neighbor{Node: int32(node), Score: score}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(-1, 3); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := New(3, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestSetGetSortsAndTruncates(t *testing.T) {
	s, err := New(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Set(1, []core.Neighbor{nb(5, 0.1), nb(7, 0.9), nb(9, 0.5)}); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Node != 7 || got[1].Node != 9 {
		t.Fatalf("list %+v", got)
	}
	if err := s.Set(5, nil); err == nil {
		t.Error("out-of-range set accepted")
	}
	if _, err := s.Get(-1); err == nil {
		t.Error("out-of-range get accepted")
	}
}

func TestSetCopiesInput(t *testing.T) {
	s, _ := New(1, 3)
	in := []core.Neighbor{nb(1, 0.5)}
	if err := s.Set(0, in); err != nil {
		t.Fatal(err)
	}
	in[0].Score = 0.99
	got, _ := s.Get(0)
	if got[0].Score != 0.5 {
		t.Fatal("store aliases caller slice")
	}
}

func TestFromResults(t *testing.T) {
	res := [][]core.Neighbor{
		{nb(1, 0.3)},
		{nb(0, 0.8), nb(2, 0.2)},
		nil,
	}
	s, err := FromResults(res, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumNodes() != 3 || s.K() != 2 {
		t.Fatalf("store %d/%d", s.NumNodes(), s.K())
	}
	got, _ := s.Get(1)
	if len(got) != 2 || got[0].Node != 0 {
		t.Fatalf("list %+v", got)
	}
}

func TestMerge(t *testing.T) {
	a, _ := New(2, 2)
	b, _ := New(2, 2)
	_ = a.Set(0, []core.Neighbor{nb(1, 0.5), nb(2, 0.3)})
	_ = b.Set(0, []core.Neighbor{nb(2, 0.6), nb(3, 0.4)})
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	got, _ := a.Get(0)
	// Dedup keeps max score per node: {2: 0.6, 3: 0.4, 1: 0.5} -> top2 {2, 1}.
	if len(got) != 2 || got[0].Node != 2 || got[0].Score != 0.6 || got[1].Node != 1 {
		t.Fatalf("merged %+v", got)
	}
	c, _ := New(3, 2)
	if err := a.Merge(c); err == nil {
		t.Error("size mismatch merge accepted")
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	s, _ := New(4, 3)
	_ = s.Set(0, []core.Neighbor{nb(1, 0.75), nb(3, 0.25)})
	_ = s.Set(2, []core.Neighbor{nb(0, 1)})
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != 4 || got.K() != 3 {
		t.Fatalf("loaded %d/%d", got.NumNodes(), got.K())
	}
	lst, _ := got.Get(0)
	if len(lst) != 2 || lst[0].Node != 1 {
		t.Fatalf("loaded list %+v", lst)
	}
	// float32 rounding tolerance.
	if math.Abs(lst[0].Score-0.75) > 1e-6 {
		t.Fatalf("score %g", lst[0].Score)
	}
	if lst, _ := got.Get(1); len(lst) != 0 {
		t.Fatalf("unset list %+v", lst)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("garbage accepted")
	}
	var buf bytes.Buffer
	buf.Write(make([]byte, 32))
	if _, err := Load(&buf); err == nil {
		t.Fatal("zero header accepted")
	}
}

// Property: save/load roundtrips arbitrary stores up to float32 rounding.
func TestQuickRoundtrip(t *testing.T) {
	f := func(seed uint64) bool {
		src := xrand.New(seed)
		n := src.Intn(20) + 1
		k := src.Intn(5) + 1
		s, err := New(n, k)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			var lst []core.Neighbor
			for j := 0; j < src.Intn(k+1); j++ {
				lst = append(lst, nb(src.Intn(n), src.Float64()))
			}
			if s.Set(i, lst) != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if s.Save(&buf) != nil {
			return false
		}
		got, err := Load(&buf)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			a, _ := s.Get(i)
			b, _ := got.Get(i)
			if len(a) != len(b) {
				return false
			}
			for j := range a {
				if a[j].Node != b[j].Node || math.Abs(a[j].Score-b[j].Score) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// savedStore serializes a small populated store and returns the bytes.
func savedStore(t *testing.T) []byte {
	t.Helper()
	s, err := New(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Set(0, []core.Neighbor{nb(1, 0.75), nb(3, 0.25)})
	_ = s.Set(2, []core.Neighbor{nb(0, 1), nb(4, 0.5), nb(1, 0.125)})
	_ = s.Set(4, []core.Neighbor{nb(2, 0.0625)})
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStoreSaveLoadSaveByteEqual: the store format must be canonical —
// load followed by save reproduces the file byte for byte. (All seed
// scores above are exact in float32, so no rounding enters.)
func TestStoreSaveLoadSaveByteEqual(t *testing.T) {
	first := savedStore(t)
	s, err := Load(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := s.Save(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second.Bytes()) {
		t.Fatalf("save→load→save changed bytes: %d vs %d", len(first), second.Len())
	}
}

// TestStoreLoadTruncated: every proper prefix errors cleanly.
func TestStoreLoadTruncated(t *testing.T) {
	full := savedStore(t)
	for _, cut := range []int{0, 3, 8, 31, 32, 36, len(full) / 2, len(full) - 1} {
		if cut >= len(full) {
			continue
		}
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d/%d bytes loaded without error", cut, len(full))
		}
	}
}

func TestStoreLoadBadMagic(t *testing.T) {
	corrupt := append([]byte(nil), savedStore(t)...)
	corrupt[0] ^= 0xff
	if _, err := Load(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("bad magic loaded without error")
	}
}

func TestStoreLoadWrongVersion(t *testing.T) {
	corrupt := append([]byte(nil), savedStore(t)...)
	binary.LittleEndian.PutUint64(corrupt[8:16], 999)
	if _, err := Load(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("future version loaded without error")
	}
}

// TestStoreLoadCorruptEntries: structurally valid headers with lying
// payloads (oversized list, out-of-range neighbor id) must be rejected.
func TestStoreLoadCorruptEntries(t *testing.T) {
	full := savedStore(t)
	// Node 0's list length lives right after the 32-byte header.
	over := append([]byte(nil), full...)
	binary.LittleEndian.PutUint32(over[32:36], 99) // exceeds k=3
	if _, err := Load(bytes.NewReader(over)); err == nil {
		t.Fatal("list length beyond k loaded without error")
	}
	badID := append([]byte(nil), full...)
	binary.LittleEndian.PutUint32(badID[36:40], 0x7fffffff) // node id 2^31-1 >> n=5
	if _, err := Load(bytes.NewReader(badID)); err == nil {
		t.Fatal("out-of-range neighbor id loaded without error")
	}
}

// TestStoreConcurrentAccess exercises the store's read/write locking
// under -race: readers serve point lookups while writers install and
// merge lists.
func TestStoreConcurrentAccess(t *testing.T) {
	const n = 64
	s, err := New(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := xrand.NewStream(5, uint64(w))
			for i := 0; i < 2000; i++ {
				node := src.Intn(n)
				if w%2 == 0 {
					if err := s.Set(node, []core.Neighbor{nb(src.Intn(n), src.Float64())}); err != nil {
						t.Error(err)
						return
					}
					continue
				}
				lst, err := s.Get(node)
				if err != nil {
					t.Error(err)
					return
				}
				if len(lst) > s.K() {
					t.Errorf("node %d list has %d entries, k=%d", node, len(lst), s.K())
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestMergeOppositeDirectionsNoDeadlock: two stores merging into each
// other concurrently must not AB-BA deadlock (Merge never holds both
// stores' locks at once).
func TestMergeOppositeDirectionsNoDeadlock(t *testing.T) {
	a, _ := New(8, 2)
	b, _ := New(8, 2)
	for i := 0; i < 8; i++ {
		_ = a.Set(i, []core.Neighbor{nb((i+1)%8, 0.5)})
		_ = b.Set(i, []core.Neighbor{nb((i+2)%8, 0.25)})
	}
	done := make(chan error, 2)
	for i := 0; i < 50; i++ {
		go func() { done <- a.Merge(b) }()
		go func() { done <- b.Merge(a) }()
		for j := 0; j < 2; j++ {
			select {
			case err := <-done:
				if err != nil {
					t.Fatal(err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("merge deadlocked")
			}
		}
	}
	// Self-merge stays a harmless no-op.
	if err := a.Merge(a); err != nil {
		t.Fatal(err)
	}
}
