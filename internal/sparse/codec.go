package sparse

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Matrix binary format: magic, version, rows, cols, then per row a length
// prefix followed by the index and value arrays. Little-endian. The
// offline stage's Monte Carlo system costs hours at the paper's scale
// while the Jacobi solve costs seconds; persisting A lets the solver be
// re-run (different L, different right-hand side) without re-walking.
const (
	matrixMagic   = 0x43575359 // "CWSY"
	matrixVersion = 1
	// maxMatrixDim bounds the dimensions a decoder will allocate for:
	// a corrupt header must produce an error, not a multi-gigabyte
	// allocation (the row nnz fields are bounded by cols afterwards).
	maxMatrixDim = 1 << 24
)

// WriteMatrix serializes m.
func WriteMatrix(w io.Writer, m *Matrix) error {
	bw := bufio.NewWriter(w)
	header := []uint64{matrixMagic, matrixVersion, uint64(m.Rows()), uint64(m.Cols())}
	for _, h := range header {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return fmt.Errorf("sparse: writing matrix header: %v", err)
		}
	}
	for i := 0; i < m.Rows(); i++ {
		row := m.Row(i)
		if err := binary.Write(bw, binary.LittleEndian, uint32(row.NNZ())); err != nil {
			return fmt.Errorf("sparse: writing row %d: %v", i, err)
		}
		if err := binary.Write(bw, binary.LittleEndian, row.Idx); err != nil {
			return fmt.Errorf("sparse: writing row %d indices: %v", i, err)
		}
		if err := binary.Write(bw, binary.LittleEndian, row.Val); err != nil {
			return fmt.Errorf("sparse: writing row %d values: %v", i, err)
		}
	}
	return bw.Flush()
}

// ReadMatrix deserializes a matrix written by WriteMatrix and validates it.
func ReadMatrix(r io.Reader) (*Matrix, error) {
	br := bufio.NewReader(r)
	var header [4]uint64
	for i := range header {
		if err := binary.Read(br, binary.LittleEndian, &header[i]); err != nil {
			return nil, fmt.Errorf("sparse: reading matrix header: %v", err)
		}
	}
	if header[0] != matrixMagic {
		return nil, fmt.Errorf("sparse: bad matrix magic %#x", header[0])
	}
	if header[1] != matrixVersion {
		return nil, fmt.Errorf("sparse: unsupported matrix version %d", header[1])
	}
	if header[2] > maxMatrixDim || header[3] > maxMatrixDim {
		return nil, fmt.Errorf("sparse: implausible matrix dimensions %d×%d", header[2], header[3])
	}
	rows, cols := int(header[2]), int(header[3])
	m := NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		var nnz uint32
		if err := binary.Read(br, binary.LittleEndian, &nnz); err != nil {
			return nil, fmt.Errorf("sparse: reading row %d: %v", i, err)
		}
		if int(nnz) > cols {
			return nil, fmt.Errorf("sparse: row %d claims %d entries in %d columns", i, nnz, cols)
		}
		row := &Vector{Idx: make([]int32, nnz), Val: make([]float64, nnz)}
		if err := binary.Read(br, binary.LittleEndian, row.Idx); err != nil {
			return nil, fmt.Errorf("sparse: reading row %d indices: %v", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, row.Val); err != nil {
			return nil, fmt.Errorf("sparse: reading row %d values: %v", i, err)
		}
		m.SetRow(i, row)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
