package sparse

import (
	"bytes"
	"testing"
)

// FuzzSparseCodec drives ReadMatrix with arbitrary bytes: it must never
// panic, and any matrix it accepts must satisfy the CSR invariants and
// survive a write/read round trip bit-identically. Seeds start from real
// encodings so the fuzzer mutates structure, not just headers.
func FuzzSparseCodec(f *testing.F) {
	empty := NewMatrix(0, 0)
	var buf bytes.Buffer
	if err := WriteMatrix(&buf, empty); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())

	m := NewMatrix(3, 4)
	m.SetRow(0, &Vector{Idx: []int32{0, 2}, Val: []float64{1.5, -2.25}})
	m.SetRow(2, &Vector{Idx: []int32{1, 2, 3}, Val: []float64{0.5, 0.25, 8}})
	buf.Reset()
	if err := WriteMatrix(&buf, m); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x59, 0x53, 0x57, 0x43}) // magic alone

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadMatrix(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("accepted matrix fails validation: %v", err)
		}
		var out bytes.Buffer
		if err := WriteMatrix(&out, got); err != nil {
			t.Fatalf("accepted matrix cannot be written: %v", err)
		}
		back, err := ReadMatrix(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.Rows() != got.Rows() || back.Cols() != got.Cols() {
			t.Fatalf("round trip changed dimensions: %dx%d vs %dx%d",
				back.Rows(), back.Cols(), got.Rows(), got.Cols())
		}
		for i := 0; i < got.Rows(); i++ {
			a, b := got.Row(i), back.Row(i)
			if a.NNZ() != b.NNZ() {
				t.Fatalf("row %d nnz changed", i)
			}
			for k := range a.Idx {
				if a.Idx[k] != b.Idx[k] || a.Val[k] != b.Val[k] {
					t.Fatalf("row %d entry %d changed", i, k)
				}
			}
		}
	})
}

// TestSparseCodecRejectsCorruption pins the corruption classes the fuzz
// target explores: truncation, bad magic/version, and lying length
// fields must all be rejected.
func TestSparseCodecRejectsCorruption(t *testing.T) {
	m := NewMatrix(2, 3)
	m.SetRow(0, &Vector{Idx: []int32{0, 2}, Val: []float64{1, 2}})
	m.SetRow(1, &Vector{Idx: []int32{1}, Val: []float64{3}})
	var buf bytes.Buffer
	if err := WriteMatrix(&buf, m); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	if _, err := ReadMatrix(bytes.NewReader(good)); err != nil {
		t.Fatalf("canonical encoding rejected: %v", err)
	}
	for _, cut := range []int{0, 7, 16, 33, len(good) - 1} {
		if _, err := ReadMatrix(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	b := append([]byte(nil), good...)
	b[0] ^= 0x01
	if _, err := ReadMatrix(bytes.NewReader(b)); err == nil {
		t.Fatal("bad magic accepted")
	}
	b = append([]byte(nil), good...)
	b[8] = 42
	if _, err := ReadMatrix(bytes.NewReader(b)); err == nil {
		t.Fatal("bad version accepted")
	}
	// Row nnz claiming more entries than the matrix has columns.
	b = append([]byte(nil), good...)
	b[32] = 200 // first row's nnz byte (after the 4-word header)
	if _, err := ReadMatrix(bytes.NewReader(b)); err == nil {
		t.Fatal("oversized row length accepted")
	}
}
