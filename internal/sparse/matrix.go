package sparse

import (
	"fmt"
)

// Matrix is a float64 CSR matrix with independently owned rows. It backs
// the linear system A x = 1 of the offline indexing stage: row i is the
// Monte-Carlo-estimated a_i. Rows may be set concurrently (one writer per
// row) because they share no storage.
type Matrix struct {
	rows []*Vector
	cols int
}

// NewMatrix returns an empty rows×cols matrix (all rows empty).
func NewMatrix(rows, cols int) *Matrix {
	m := &Matrix{rows: make([]*Vector, rows), cols: cols}
	for i := range m.rows {
		m.rows[i] = &Vector{}
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return len(m.rows) }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Row returns row i. The caller must not mutate it.
func (m *Matrix) Row(i int) *Vector { return m.rows[i] }

// SetRow installs row i. Safe for concurrent use with distinct i.
func (m *Matrix) SetRow(i int, v *Vector) { m.rows[i] = v }

// NNZ returns the total number of stored entries.
func (m *Matrix) NNZ() int {
	total := 0
	for _, r := range m.rows {
		total += r.NNZ()
	}
	return total
}

// MemoryBytes estimates the resident size of the matrix.
func (m *Matrix) MemoryBytes() int64 {
	return int64(m.NNZ()) * 12 // int32 index + float64 value
}

// MulVec computes y = M x for dense x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.cols {
		return nil, fmt.Errorf("sparse: MulVec dimension mismatch: %d cols, %d vector", m.cols, len(x))
	}
	y := make([]float64, len(m.rows))
	for i, r := range m.rows {
		s := 0.0
		for k, j := range r.Idx {
			s += r.Val[k] * x[j]
		}
		y[i] = s
	}
	return y, nil
}

// Diag returns the diagonal entries as a dense slice.
func (m *Matrix) Diag() []float64 {
	d := make([]float64, len(m.rows))
	for i := range m.rows {
		d[i] = m.rows[i].Get(i)
	}
	return d
}

// Validate checks every row.
func (m *Matrix) Validate() error {
	for i, r := range m.rows {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("row %d: %v", i, err)
		}
		if n := r.NNZ(); n > 0 && int(r.Idx[n-1]) >= m.cols {
			return fmt.Errorf("row %d: index %d out of %d columns", i, r.Idx[n-1], m.cols)
		}
	}
	return nil
}
