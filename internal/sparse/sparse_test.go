package sparse

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"cloudwalker/internal/gen"
	"cloudwalker/internal/graph"
	"cloudwalker/internal/xrand"
)

func vec(pairs ...float64) *Vector {
	v := &Vector{}
	for i := 0; i+1 < len(pairs); i += 2 {
		v.Idx = append(v.Idx, int32(pairs[i]))
		v.Val = append(v.Val, pairs[i+1])
	}
	return v
}

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestVectorGetSum(t *testing.T) {
	v := vec(1, 2.5, 4, -1, 9, 0.5)
	if v.NNZ() != 3 {
		t.Fatalf("NNZ = %d", v.NNZ())
	}
	if v.Get(4) != -1 || v.Get(0) != 0 || v.Get(9) != 0.5 {
		t.Fatal("Get wrong")
	}
	if !approx(v.Sum(), 2.0, 1e-12) {
		t.Fatalf("Sum = %g", v.Sum())
	}
	if !approx(v.L1(), 4.0, 1e-12) {
		t.Fatalf("L1 = %g", v.L1())
	}
}

func TestDot(t *testing.T) {
	a := vec(0, 1, 2, 2, 5, 3)
	b := vec(1, 7, 2, 4, 5, -1)
	if got := Dot(a, b); !approx(got, 2*4+3*(-1), 1e-12) {
		t.Fatalf("Dot = %g", got)
	}
	if got := Dot(a, &Vector{}); got != 0 {
		t.Fatalf("Dot with empty = %g", got)
	}
}

func TestWeightedDot(t *testing.T) {
	a := vec(0, 0.5, 3, 0.5)
	b := vec(0, 0.25, 3, 0.75)
	w := []float64{2, 0, 0, 4}
	want := 0.5*2*0.25 + 0.5*4*0.75
	if got := WeightedDot(a, b, w); !approx(got, want, 1e-12) {
		t.Fatalf("WeightedDot = %g, want %g", got, want)
	}
}

func TestHadamardAndSquare(t *testing.T) {
	a := vec(1, 2, 3, 3)
	b := vec(3, 4, 5, 6)
	h := Hadamard(a, b)
	if h.NNZ() != 1 || h.Get(3) != 12 {
		t.Fatalf("Hadamard = %+v", h)
	}
	sq := a.SquareValues()
	if sq.Get(1) != 4 || sq.Get(3) != 9 {
		t.Fatalf("SquareValues = %+v", sq)
	}
	// original untouched
	if a.Get(1) != 2 {
		t.Fatal("SquareValues mutated receiver")
	}
}

func TestAddScaled(t *testing.T) {
	a := vec(0, 1, 2, 1)
	b := vec(1, 1, 2, 3)
	c := AddScaled(a, 2, b)
	if c.Get(0) != 1 || c.Get(1) != 2 || c.Get(2) != 7 {
		t.Fatalf("AddScaled = %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPrune(t *testing.T) {
	v := vec(0, 0.001, 1, 0.5, 2, -0.0001)
	v.Prune(0.01)
	if v.NNZ() != 1 || v.Get(1) != 0.5 {
		t.Fatalf("Prune kept %+v", v)
	}
}

func TestDenseRoundtrip(t *testing.T) {
	v := vec(0, 1, 3, -2)
	d := v.Dense(5)
	if d[0] != 1 || d[3] != -2 || d[1] != 0 {
		t.Fatalf("Dense = %v", d)
	}
	w := FromDense(d)
	if w.NNZ() != 2 || w.Get(3) != -2 {
		t.Fatalf("FromDense = %+v", w)
	}
}

func TestUnit(t *testing.T) {
	e := Unit(7)
	if e.NNZ() != 1 || e.Get(7) != 1 || e.Sum() != 1 {
		t.Fatalf("Unit = %+v", e)
	}
}

func TestValidate(t *testing.T) {
	bad := &Vector{Idx: []int32{3, 1}, Val: []float64{1, 2}}
	if bad.Validate() == nil {
		t.Fatal("unsorted vector validated")
	}
	bad2 := &Vector{Idx: []int32{1}, Val: []float64{1, 2}}
	if bad2.Validate() == nil {
		t.Fatal("ragged vector validated")
	}
}

func TestAccumulator(t *testing.T) {
	acc := NewAccumulator()
	acc.Add(5, 1)
	acc.Add(2, 3)
	acc.Add(5, 2)
	acc.Add(9, 1)
	acc.Add(9, -1) // cancels to zero, dropped
	v := acc.ToVector()
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	if v.NNZ() != 2 || v.Get(5) != 3 || v.Get(2) != 3 {
		t.Fatalf("accumulated %+v", v)
	}
	acc.Reset()
	if acc.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
}

// ---- Transition operator ----

// diamond: 0->1, 0->2, 1->3, 2->3. In(1)={0}, In(2)={0}, In(3)={1,2}.
func diamond(t *testing.T) *graph.Graph {
	t.Helper()
	return graph.MustFromEdges(4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
}

func TestTransitionApply(t *testing.T) {
	p := NewTransition(diamond(t))
	// P e_3: mass splits over In(3) = {1, 2}.
	y := p.Apply(Unit(3))
	if y.NNZ() != 2 || !approx(y.Get(1), 0.5, 1e-12) || !approx(y.Get(2), 0.5, 1e-12) {
		t.Fatalf("P e_3 = %+v", y)
	}
	// P e_0: node 0 has no in-links; mass vanishes.
	if y := p.Apply(Unit(0)); y.NNZ() != 0 {
		t.Fatalf("P e_0 = %+v, want empty", y)
	}
	// Two steps from 3: all mass at 0.
	y2 := p.Apply(p.Apply(Unit(3)))
	if y2.NNZ() != 1 || !approx(y2.Get(0), 1.0, 1e-12) {
		t.Fatalf("P^2 e_3 = %+v", y2)
	}
}

func TestTransitionColumnStochastic(t *testing.T) {
	// For any node with in-links, column sums to 1: sum(P e_i) == 1.
	g, err := gen.ErdosRenyi(60, 300, 5)
	if err != nil {
		t.Fatal(err)
	}
	p := NewTransition(g)
	for i := 0; i < g.NumNodes(); i++ {
		s := p.Apply(Unit(i)).Sum()
		want := 1.0
		if g.InDegree(i) == 0 {
			want = 0
		}
		if !approx(s, want, 1e-9) {
			t.Fatalf("column %d sums to %g, want %g", i, s, want)
		}
	}
}

func TestTransitionApplyTAgainstDefinition(t *testing.T) {
	g := diamond(t)
	p := NewTransition(g)
	// (Pᵀ e_0)(i) = P[0][i] = 1/|In(i)| if 0 ∈ In(i).
	y := p.ApplyT(Unit(0))
	if !approx(y.Get(1), 1.0, 1e-12) || !approx(y.Get(2), 1.0, 1e-12) {
		t.Fatalf("Pᵀ e_0 = %+v", y)
	}
	// (Pᵀ e_1)(3) = 1/|In(3)| = 0.5.
	y = p.ApplyT(Unit(1))
	if !approx(y.Get(3), 0.5, 1e-12) {
		t.Fatalf("Pᵀ e_1 = %+v", y)
	}
}

func TestTransitionDenseMatchesSparse(t *testing.T) {
	g, err := gen.RMAT(80, 400, gen.DefaultRMAT, 9)
	if err != nil {
		t.Fatal(err)
	}
	p := NewTransition(g)
	src := xrand.New(1)
	x := make([]float64, g.NumNodes())
	for i := range x {
		if src.Float64() < 0.3 {
			x[i] = src.Float64()*2 - 1
		}
	}
	xs := FromDense(x)

	yd := p.ApplyDense(x)
	ys := p.Apply(xs).Dense(g.NumNodes())
	for i := range yd {
		if !approx(yd[i], ys[i], 1e-9) {
			t.Fatalf("Apply dense/sparse differ at %d: %g vs %g", i, yd[i], ys[i])
		}
	}

	td := p.ApplyTDense(x)
	ts := p.ApplyT(xs).Dense(g.NumNodes())
	for i := range td {
		if !approx(td[i], ts[i], 1e-9) {
			t.Fatalf("ApplyT dense/sparse differ at %d: %g vs %g", i, td[i], ts[i])
		}
	}
}

// Property: <Pᵀa, b> == <a, Pb> (adjointness) on random graphs/vectors.
func TestQuickTransitionAdjoint(t *testing.T) {
	f := func(seed uint64) bool {
		src := xrand.New(seed)
		n := src.Intn(40) + 5
		g, err := gen.ErdosRenyi(n, 4*n, seed)
		if err != nil {
			return false
		}
		p := NewTransition(g)
		a, b := &Vector{}, &Vector{}
		for i := 0; i < n; i++ {
			if src.Float64() < 0.4 {
				a.Idx = append(a.Idx, int32(i))
				a.Val = append(a.Val, src.Float64())
			}
			if src.Float64() < 0.4 {
				b.Idx = append(b.Idx, int32(i))
				b.Val = append(b.Val, src.Float64())
			}
		}
		lhs := Dot(p.ApplyT(a), b)
		rhs := Dot(a, p.Apply(b))
		return approx(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPowerUnit(t *testing.T) {
	p := NewTransition(diamond(t))
	dists := p.PowerUnit(3, 3)
	if len(dists) != 4 {
		t.Fatalf("PowerUnit returned %d dists", len(dists))
	}
	if dists[0].Get(3) != 1 {
		t.Fatal("t=0 should be e_i")
	}
	if !approx(dists[1].Get(1), 0.5, 1e-12) {
		t.Fatal("t=1 wrong")
	}
	if !approx(dists[2].Get(0), 1, 1e-12) {
		t.Fatal("t=2 wrong")
	}
	if dists[3].NNZ() != 0 {
		t.Fatal("t=3 should be empty (0 has no in-links)")
	}
}

// ---- Matrix ----

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(3, 4)
	m.SetRow(0, vec(0, 1, 2, 2))
	m.SetRow(1, vec(1, 3))
	m.SetRow(2, vec(2, -1, 3, 5))
	if m.Rows() != 3 || m.Cols() != 4 || m.NNZ() != 5 {
		t.Fatalf("dims wrong: %d %d %d", m.Rows(), m.Cols(), m.NNZ())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	y, err := m.MulVec([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1*1 + 2*3, 3 * 2, -1*3 + 5*4}
	for i := range want {
		if !approx(y[i], want[i], 1e-12) {
			t.Fatalf("MulVec[%d] = %g, want %g", i, y[i], want[i])
		}
	}
	d := m.Diag()
	if d[0] != 1 || d[1] != 3 || d[2] != -1 {
		t.Fatalf("Diag = %v", d)
	}
	if m.MemoryBytes() != 60 {
		t.Fatalf("MemoryBytes = %d", m.MemoryBytes())
	}
}

func TestMatrixMulVecDimMismatch(t *testing.T) {
	m := NewMatrix(2, 3)
	if _, err := m.MulVec([]float64{1, 2}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestMatrixValidateOutOfRange(t *testing.T) {
	m := NewMatrix(1, 2)
	m.SetRow(0, vec(5, 1))
	if m.Validate() == nil {
		t.Fatal("out-of-range column validated")
	}
}

func TestMatrixCodecRoundtrip(t *testing.T) {
	src := xrand.New(3)
	m := NewMatrix(20, 25)
	for i := 0; i < 20; i++ {
		acc := NewAccumulator()
		for k := 0; k < src.Intn(8); k++ {
			acc.Add(int32(src.Intn(25)), src.Float64()*2-1)
		}
		m.SetRow(i, acc.ToVector())
	}
	var buf bytes.Buffer
	if err := WriteMatrix(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrix(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != 20 || got.Cols() != 25 || got.NNZ() != m.NNZ() {
		t.Fatalf("dims changed: %d/%d/%d", got.Rows(), got.Cols(), got.NNZ())
	}
	for i := 0; i < 20; i++ {
		a, b := m.Row(i), got.Row(i)
		if a.NNZ() != b.NNZ() {
			t.Fatalf("row %d nnz changed", i)
		}
		for k := range a.Idx {
			if a.Idx[k] != b.Idx[k] || a.Val[k] != b.Val[k] {
				t.Fatalf("row %d entry %d changed", i, k)
			}
		}
	}
}

func TestMatrixCodecRejectsGarbage(t *testing.T) {
	if _, err := ReadMatrix(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("garbage accepted")
	}
	var buf bytes.Buffer
	buf.Write(make([]byte, 32))
	if _, err := ReadMatrix(&buf); err == nil {
		t.Fatal("zero header accepted")
	}
}

func TestMatrixCodecEmptyMatrix(t *testing.T) {
	m := NewMatrix(0, 0)
	var buf bytes.Buffer
	if err := WriteMatrix(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrix(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != 0 {
		t.Fatal("empty matrix roundtrip failed")
	}
}
