package sparse

import (
	"cloudwalker/internal/graph"
)

// Transition is the column-stochastic backward transition operator P of a
// graph: P[k][i] = 1/|In(i)| if k ∈ In(i), else 0. Columns of nodes with no
// in-links are zero (their walks terminate), matching the paper's random
// walker semantics. The operator applies P and Pᵀ without materializing
// the matrix.
type Transition struct {
	g *graph.Graph
}

// NewTransition wraps g's backward transition operator.
func NewTransition(g *graph.Graph) *Transition {
	return &Transition{g: g}
}

// N returns the operator dimension (number of nodes).
func (p *Transition) N() int { return p.g.NumNodes() }

// Apply computes y = P x for sparse x: each mass x_i spreads equally over
// the in-neighbors of i. Cost is proportional to the sum of in-degrees of
// x's support.
func (p *Transition) Apply(x *Vector) *Vector {
	acc := NewAccumulator()
	for t, i := range x.Idx {
		node := int(i)
		d := p.g.InDegree(node)
		if d == 0 {
			continue // dangling column: walk mass vanishes
		}
		share := x.Val[t] / float64(d)
		for _, k := range p.g.InNeighbors(node) {
			acc.Add(k, share)
		}
	}
	return acc.ToVector()
}

// ApplyT computes y = Pᵀ x for sparse x: (Pᵀx)(i) = (1/|In(i)|) Σ_{k∈In(i)} x_k.
// Each mass x_k at node k pushes x_k/|In(i)| to every node i that has k as
// an in-neighbor — i.e. along k's out-links with weight 1/|In(target)|.
func (p *Transition) ApplyT(x *Vector) *Vector {
	acc := NewAccumulator()
	for t, k := range x.Idx {
		node := int(k)
		val := x.Val[t]
		for _, i := range p.g.OutNeighbors(node) {
			d := p.g.InDegree(int(i))
			if d == 0 {
				continue // cannot happen: i has in-neighbor k
			}
			acc.Add(i, val/float64(d))
		}
	}
	return acc.ToVector()
}

// ApplyDense computes y = P x for dense x into a fresh dense slice.
func (p *Transition) ApplyDense(x []float64) []float64 {
	n := p.g.NumNodes()
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		if x[i] == 0 {
			continue
		}
		d := p.g.InDegree(i)
		if d == 0 {
			continue
		}
		share := x[i] / float64(d)
		for _, k := range p.g.InNeighbors(i) {
			y[k] += share
		}
	}
	return y
}

// ApplyTDense computes y = Pᵀ x for dense x into a fresh dense slice.
func (p *Transition) ApplyTDense(x []float64) []float64 {
	n := p.g.NumNodes()
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		d := p.g.InDegree(i)
		if d == 0 {
			continue
		}
		s := 0.0
		for _, k := range p.g.InNeighbors(i) {
			s += x[k]
		}
		y[i] = s / float64(d)
	}
	return y
}

// PowerUnit returns the distributions P^t e_i for t = 0..T as sparse
// vectors, computed exactly. This is the deterministic counterpart of the
// Monte Carlo walk histograms (used by the LIN baseline and by tests).
func (p *Transition) PowerUnit(i, T int) []*Vector {
	out := make([]*Vector, T+1)
	out[0] = Unit(i)
	for t := 1; t <= T; t++ {
		out[t] = p.Apply(out[t-1])
	}
	return out
}
