// Package sparse implements the sparse vectors, CSR matrices, and the
// SimRank transition operator P that CloudWalker's offline indexing and the
// LIN baseline are built on.
//
// P is the column-stochastic backward transition matrix of the graph:
// P[k][i] = 1/|In(i)| for k in In(i). P^t e_i is the t-step distribution of
// a random walk from node i along in-links — the quantity CloudWalker
// estimates with Monte Carlo and LIN computes exactly.
package sparse

import (
	"fmt"
	"math"
	"sort"
)

// Vector is a sparse vector: parallel slices of strictly increasing indices
// and their values. The zero value is an empty vector.
type Vector struct {
	Idx []int32
	Val []float64
}

// NNZ returns the number of stored entries.
func (v *Vector) NNZ() int { return len(v.Idx) }

// Get returns the value at index i (0 if absent) by binary search.
func (v *Vector) Get(i int) float64 {
	p := sort.Search(len(v.Idx), func(k int) bool { return v.Idx[k] >= int32(i) })
	if p < len(v.Idx) && v.Idx[p] == int32(i) {
		return v.Val[p]
	}
	return 0
}

// Sum returns the sum of all values.
func (v *Vector) Sum() float64 {
	s := 0.0
	for _, x := range v.Val {
		s += x
	}
	return s
}

// L1 returns the sum of absolute values.
func (v *Vector) L1() float64 {
	s := 0.0
	for _, x := range v.Val {
		s += math.Abs(x)
	}
	return s
}

// Scale multiplies every value by a in place and returns the receiver.
func (v *Vector) Scale(a float64) *Vector {
	for i := range v.Val {
		v.Val[i] *= a
	}
	return v
}

// Clone returns a deep copy.
func (v *Vector) Clone() *Vector {
	w := &Vector{
		Idx: make([]int32, len(v.Idx)),
		Val: make([]float64, len(v.Val)),
	}
	copy(w.Idx, v.Idx)
	copy(w.Val, v.Val)
	return w
}

// Dot returns the inner product of two sparse vectors by sorted merge.
func Dot(a, b *Vector) float64 {
	s := 0.0
	i, j := 0, 0
	for i < len(a.Idx) && j < len(b.Idx) {
		switch {
		case a.Idx[i] < b.Idx[j]:
			i++
		case a.Idx[i] > b.Idx[j]:
			j++
		default:
			s += a.Val[i] * b.Val[j]
			i++
			j++
		}
	}
	return s
}

// WeightedDot returns sum_k a_k * w_k * b_k where w is a dense weight
// vector — the inner loop of MCSP: (P^t e_i)' D (P^t e_j).
func WeightedDot(a, b *Vector, w []float64) float64 {
	s := 0.0
	i, j := 0, 0
	for i < len(a.Idx) && j < len(b.Idx) {
		switch {
		case a.Idx[i] < b.Idx[j]:
			i++
		case a.Idx[i] > b.Idx[j]:
			j++
		default:
			s += a.Val[i] * w[a.Idx[i]] * b.Val[j]
			i++
			j++
		}
	}
	return s
}

// Hadamard returns the elementwise product a∘b as a new sparse vector.
func Hadamard(a, b *Vector) *Vector {
	out := &Vector{}
	i, j := 0, 0
	for i < len(a.Idx) && j < len(b.Idx) {
		switch {
		case a.Idx[i] < b.Idx[j]:
			i++
		case a.Idx[i] > b.Idx[j]:
			j++
		default:
			out.Idx = append(out.Idx, a.Idx[i])
			out.Val = append(out.Val, a.Val[i]*b.Val[j])
			i++
			j++
		}
	}
	return out
}

// SquareValues returns a new vector with every value squared (the
// Hadamard self-product used for the a_i rows).
func (v *Vector) SquareValues() *Vector {
	w := v.Clone()
	for i := range w.Val {
		w.Val[i] *= w.Val[i]
	}
	return w
}

// AddScaled returns a + s*b as a new sparse vector (sorted merge).
func AddScaled(a *Vector, s float64, b *Vector) *Vector {
	out := &Vector{
		Idx: make([]int32, 0, len(a.Idx)+len(b.Idx)),
		Val: make([]float64, 0, len(a.Idx)+len(b.Idx)),
	}
	i, j := 0, 0
	for i < len(a.Idx) || j < len(b.Idx) {
		switch {
		case j >= len(b.Idx) || (i < len(a.Idx) && a.Idx[i] < b.Idx[j]):
			out.Idx = append(out.Idx, a.Idx[i])
			out.Val = append(out.Val, a.Val[i])
			i++
		case i >= len(a.Idx) || b.Idx[j] < a.Idx[i]:
			out.Idx = append(out.Idx, b.Idx[j])
			out.Val = append(out.Val, s*b.Val[j])
			j++
		default:
			out.Idx = append(out.Idx, a.Idx[i])
			out.Val = append(out.Val, a.Val[i]+s*b.Val[j])
			i++
			j++
		}
	}
	return out
}

// Prune removes entries with |value| <= eps in place and returns the
// receiver. The sparse single-source pull estimator uses it to bound
// frontier growth.
func (v *Vector) Prune(eps float64) *Vector {
	k := 0
	for i := range v.Idx {
		if math.Abs(v.Val[i]) > eps {
			v.Idx[k] = v.Idx[i]
			v.Val[k] = v.Val[i]
			k++
		}
	}
	v.Idx = v.Idx[:k]
	v.Val = v.Val[:k]
	return v
}

// Dense scatters the vector into a dense slice of length n.
func (v *Vector) Dense(n int) []float64 {
	d := make([]float64, n)
	for i, idx := range v.Idx {
		d[idx] = v.Val[i]
	}
	return d
}

// FromDense gathers the non-zero entries of a dense slice.
func FromDense(d []float64) *Vector {
	v := &Vector{}
	for i, x := range d {
		if x != 0 {
			v.Idx = append(v.Idx, int32(i))
			v.Val = append(v.Val, x)
		}
	}
	return v
}

// Unit returns the sparse standard basis vector e_i.
func Unit(i int) *Vector {
	return &Vector{Idx: []int32{int32(i)}, Val: []float64{1}}
}

// Validate checks the strictly-increasing-index invariant.
func (v *Vector) Validate() error {
	if len(v.Idx) != len(v.Val) {
		return fmt.Errorf("sparse: index/value length mismatch %d/%d", len(v.Idx), len(v.Val))
	}
	for i := 1; i < len(v.Idx); i++ {
		if v.Idx[i-1] >= v.Idx[i] {
			return fmt.Errorf("sparse: indices not strictly increasing at %d", i)
		}
	}
	return nil
}

// Accumulator builds a sparse vector by accumulating (index, value) pairs
// in any order; ToVector sorts and merges them. It is the target of the
// Monte Carlo walk histograms.
type Accumulator struct {
	m map[int32]float64
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator {
	return &Accumulator{m: make(map[int32]float64)}
}

// Add accumulates value at index i.
func (a *Accumulator) Add(i int32, value float64) {
	a.m[i] += value
}

// Len returns the number of distinct indices accumulated.
func (a *Accumulator) Len() int { return len(a.m) }

// ToVector freezes the accumulated entries into a sorted sparse Vector,
// dropping exact zeros.
func (a *Accumulator) ToVector() *Vector {
	v := &Vector{
		Idx: make([]int32, 0, len(a.m)),
		Val: make([]float64, 0, len(a.m)),
	}
	for i := range a.m {
		v.Idx = append(v.Idx, i)
	}
	sort.Slice(v.Idx, func(x, y int) bool { return v.Idx[x] < v.Idx[y] })
	for _, i := range v.Idx {
		v.Val = append(v.Val, a.m[i])
	}
	// Drop exact zeros produced by cancellation.
	return v.Prune(0)
}

// Reset clears the accumulator for reuse.
func (a *Accumulator) Reset() {
	clear(a.m)
}
