// Adaptive sampling: the wave-mode entry points of the batched engine.
//
// The fixed-budget kernels (batch.go) always run R walkers. The adaptive
// layer launches the same walker population in geometric waves — walker
// IDs [0, n₁), [n₁, n₂), … following AdaptiveSchedule — and lets the
// caller stop as soon as an empirical-Bernstein confidence interval on
// its estimate is narrower than the requested ε. Three invariants make
// early stopping safe:
//
//   - Walker w of a wave draws from xrand.NewStream(seed, first+w), the
//     SAME substream it would own in the one-shot run, so the set of
//     trajectories depends only on the stop point, never on the wave
//     boundaries.
//   - Waves emit integer visit counts that WaveAccum merges by integer
//     addition, and the caller converts each per-node total to float64
//     exactly once. Running every wave to the cap therefore reproduces
//     the fixed-budget integers — and the fixed-budget floats — bit for
//     bit.
//   - The schedule is capped by the configured budget, so the worst case
//     costs exactly what the fixed-budget path costs.
package walk

import (
	"math"

	"cloudwalker/internal/graph"
	"cloudwalker/internal/sparse"
)

// adaptiveMinWave is the smallest first wave: below this the variance
// estimate is too noisy to act on and the checkpoint overhead exceeds
// the walkers it could save.
const adaptiveMinWave = 32

// AdaptiveSchedule returns the cumulative walker targets of the geometric
// wave schedule for a budget of R walkers: roughly R/8 doubling up to R,
// e.g. 126, 252, 504, 1000 for R = 1000. Every intermediate target is
// even so estimators that pair consecutive walkers never straddle a
// checkpoint; the final target is the budget itself (the cap). A budget
// small enough for one wave yields a single entry and no checkpoints.
func AdaptiveSchedule(budget int) []int {
	if budget <= 0 {
		return nil
	}
	r0 := (budget + 7) / 8
	if r0 < adaptiveMinWave {
		r0 = adaptiveMinWave
	}
	r0 = (r0 + 1) &^ 1 // round up to even
	if r0 >= budget {
		return []int{budget}
	}
	sched := make([]int, 0, 5)
	for c := r0; c < budget; c *= 2 {
		sched = append(sched, c)
	}
	return append(sched, budget)
}

// AdaptiveLogTerm distributes the caller's failure probability δ over the
// schedule's intermediate checkpoints (union bound) and returns the log
// term L = ln(3/δ′) the half-width formula consumes. checkpoints is
// len(AdaptiveSchedule(R)) - 1; with no checkpoints there is no stopping
// decision and the term is moot but still finite.
func AdaptiveLogTerm(delta float64, checkpoints int) float64 {
	if checkpoints < 1 {
		checkpoints = 1
	}
	return math.Log(3 * float64(checkpoints) / delta)
}

// AdaptiveHalfWidth is the empirical-Bernstein-style confidence half
// width for the mean of n iid samples in [0, b] with running sum and sum
// of squares: sqrt(2·V̂·L/n) + b·L/n, where V̂ is the biased empirical
// variance and L = AdaptiveLogTerm(δ, checkpoints). The variance term is
// the textbook Audibert–Munos–Szepesvári bound; the additive range term
// uses κ = 1 instead of the worst-case κ = 3 — calibrated, not proven,
// and the coverage test in internal/core pins that the resulting
// intervals still cover the exact value well beyond 1−δ on SimRank
// workloads (meeting indicators concentrate far below their range).
func AdaptiveHalfWidth(sum, sumsq float64, n int, L, b float64) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	fn := float64(n)
	mean := sum / fn
	v := sumsq/fn - mean*mean
	if v < 0 {
		v = 0
	}
	return math.Sqrt(2*v*L/fn) + b*L/fn
}

// DistCountsWave runs one wave of R walkers (IDs first..first+R-1 in the
// seed's stream space) from start for T levels, filling buf with the
// wave's per-level integer visit counts exactly like distCounts, and
// records every walker's position in trace: trace[(t-1)·R + w] is the
// node walker first+w occupies at level t, or -1 once it has died (the
// first T·R entries of trace are overwritten). The trace is what lets
// per-walker samples — meeting indicators between two coupled waves —
// be computed without ever touching the walk order, so the counts stay
// bit-compatible with the fixed-budget engine.
func (s *Scratch) DistCountsWave(buf *DistBuf, vw *graph.WalkView, start, T, R int, seed, first uint64, trace []int32) {
	trace = trace[:T*R]
	for i := range trace {
		trace[i] = -1
	}
	s.distCountsTraced(buf, vw, start, T, R, seed, first, trace)
}

// WaveAccum accumulates the integer visit counts of successive waves.
// Each level's (node, count) list is kept sorted by node; Merge sums a
// new wave in by a two-pointer integer merge, so after any number of
// waves the lists are exactly the integers the one-shot run over the
// same walker population would have emitted, in the same order.
type WaveAccum struct {
	idx [][]int32
	cnt [][]int32
	val [][]float64
	// tIdx/tCnt are the merge scratch, reused across levels and calls.
	tIdx []int32
	tCnt []int32
	vecs []sparse.Vector
}

// Reset clears the accumulator for T+1 levels, keeping capacity.
func (a *WaveAccum) Reset(T int) {
	for len(a.idx) < T+1 {
		a.idx = append(a.idx, nil)
		a.cnt = append(a.cnt, nil)
		a.val = append(a.val, nil)
	}
	for t := 0; t <= T; t++ {
		a.idx[t] = a.idx[t][:0]
		a.cnt[t] = a.cnt[t][:0]
	}
	if cap(a.vecs) < T+1 {
		a.vecs = make([]sparse.Vector, T+1)
	}
	a.vecs = a.vecs[:T+1]
}

// Merge folds one wave's per-level counts (as filled by DistCountsWave)
// into the accumulator.
func (a *WaveAccum) Merge(buf *DistBuf, T int) {
	for t := 0; t <= T; t++ {
		ai, ac := a.idx[t], a.cnt[t]
		bi, bc := buf.idx[t], buf.cnt[t]
		if len(bi) == 0 {
			continue
		}
		if len(ai) == 0 {
			a.idx[t] = append(ai, bi...)
			a.cnt[t] = append(ac, bc...)
			continue
		}
		mi, mc := a.tIdx[:0], a.tCnt[:0]
		i, j := 0, 0
		for i < len(ai) && j < len(bi) {
			switch {
			case ai[i] < bi[j]:
				mi = append(mi, ai[i])
				mc = append(mc, ac[i])
				i++
			case ai[i] > bi[j]:
				mi = append(mi, bi[j])
				mc = append(mc, bc[j])
				j++
			default:
				mi = append(mi, ai[i])
				mc = append(mc, ac[i]+bc[j])
				i++
				j++
			}
		}
		mi = append(mi, ai[i:]...)
		mc = append(mc, ac[i:]...)
		mi = append(mi, bi[j:]...)
		mc = append(mc, bc[j:]...)
		a.idx[t] = append(a.idx[t][:0], mi...)
		a.cnt[t] = append(a.cnt[t][:0], mc...)
		a.tIdx, a.tCnt = mi[:0], mc[:0]
	}
}

// Level returns the accumulated (node, count) list of level t.
func (a *WaveAccum) Level(t int) ([]int32, []int32) { return a.idx[t], a.cnt[t] }

// Scale converts the accumulated integer counts into empirical
// distributions over a total population of n walkers — val = count/n,
// one float64 conversion per entry, exactly DistBuf.scale over the
// merged integers. The returned vectors alias the accumulator.
func (a *WaveAccum) Scale(T, n int) []sparse.Vector {
	invN := 1.0 / float64(n)
	for t := 0; t <= T; t++ {
		idx, cnt := a.idx[t], a.cnt[t]
		val := a.val[t][:0]
		for i := range idx {
			val = append(val, float64(cnt[i])*invN)
		}
		a.val[t] = val
		a.vecs[t] = sparse.Vector{Idx: idx, Val: val}
	}
	return a.vecs[:T+1]
}

// RowStats reports what an adaptive row estimate actually spent.
type RowStats struct {
	Walkers   int     // walkers run (= budget when the cap was hit)
	Budget    int     // the configured cap R
	HalfWidth float64 // confidence half-width at the stop point
	Stopped   bool    // stopped before the cap
}

// EstimateRowAdaptiveInto is EstimateRowInto with confidence-driven early
// stopping: walkers launch in AdaptiveSchedule(R) waves (walker w of row
// i still draws from xrand.NewStream(seed, i·R+w), so any stop point is
// a prefix of the fixed-budget walker population), and after each
// intermediate wave the estimator checks an empirical-Bernstein interval
// on the row's self-similarity mass Σ_{t≥1} c^t‖p̂_t‖² — the quantity the
// squared counts estimate — using consecutive walker pairs as iid
// meeting samples bounded by b. It stops when the half-width is ≤ eps.
// L is AdaptiveLogTerm(δ, checkpoints) and b the sample range bound
// (Σ_{t≥1} c^t for rows); callers derive both from Options once.
//
// Run to the cap, the emitted row is bit-identical to EstimateRowInto:
// the merged wave counts are the one-shot integers and the per-node
// c^t·(count/R)² terms accumulate in the same level order.
func (re *RowEstimator) EstimateRowAdaptiveInto(i, T int, c float64, seed uint64, eps, L, b float64, out *sparse.Vector) RowStats {
	s := re.walk
	s.grow(re.vw.NumNodes())
	if len(re.ct) < T+1 || re.ctC != c {
		re.ct = append(re.ct[:0], 1)
		for t := 1; t <= T; t++ {
			re.ct = append(re.ct, re.ct[t-1]*c)
		}
		re.ctC = c
	}
	sched := AdaptiveSchedule(re.r)
	re.wav.Reset(T)
	var sum, sumsq float64
	samples := 0
	prev := 0
	hw := math.Inf(1)
	stopped := false
	for wi, cum := range sched {
		rw := cum - prev
		if cap(re.trace) < T*rw {
			re.trace = make([]int32, T*rw)
		}
		trace := re.trace[:T*rw]
		s.DistCountsWave(&re.wbuf, re.vw, i, T, rw, seed, uint64(i)*uint64(re.r)+uint64(prev), trace)
		re.wav.Merge(&re.wbuf, T)
		// Consecutive walkers pair into iid meeting samples; intermediate
		// cumulative targets are even, so pairs never straddle a wave (a
		// final odd walker goes uncounted by the statistic but still
		// contributes its visit counts).
		for k := 0; k+1 < rw; k += 2 {
			x := 0.0
			for t := 1; t <= T; t++ {
				a := trace[(t-1)*rw+k]
				if a < 0 {
					break // dead walkers never meet again
				}
				if a == trace[(t-1)*rw+k+1] {
					x += re.ct[t]
				}
			}
			sum += x
			sumsq += x * x
			samples++
		}
		prev = cum
		hw = AdaptiveHalfWidth(sum, sumsq, samples, L, b)
		if wi < len(sched)-1 && hw <= eps {
			stopped = true
			break
		}
	}
	// Emit the row from the cumulative integer counts, mirroring
	// emitPairs: the exact t = 0 diagonal term first, then each node's
	// c^t·(count/R)² terms in ascending level order — the same float64
	// accumulation sequence as the fixed-budget paths.
	out.Idx = out.Idx[:0]
	out.Val = out.Val[:0]
	s.Add(int32(i), 1)
	invR := 1.0 / float64(prev)
	for t := 1; t <= T; t++ {
		idx, cnt := re.wav.idx[t], re.wav.cnt[t]
		ctt := re.ct[t]
		for k := range idx {
			frac := float64(cnt[k]) * invR
			s.Add(idx[k], ctt*frac*frac)
		}
	}
	s.FlushInto(out)
	return RowStats{Walkers: prev, Budget: re.r, HalfWidth: hw, Stopped: stopped}
}

// SingleSourceWalkWave runs walkers first..first+R-1 of the MCSS
// single-source estimator and accumulates their phase-two deposits
// UNSCALED into the scratch histogram: no 1/R factor (the caller divides
// by the total population once, at FlushScaledInto) and no t = 0
// self-term (core pins the query node to exactly 1 after clamping, so
// the term never survives anyway). Waves therefore accumulate into one
// histogram and any stop point is a valid estimate.
//
// Alongside each deposit the kernel maintains hist2, the per-node sum of
// SQUARED deposits, and returns the largest single deposit and the
// largest per-node hist2 value seen so far — the ingredients of the
// caller's per-entry confidence heuristic (the entry with the largest
// second moment bounds every entry's interval).
func (s *Scratch) SingleSourceWalkWave(vw *graph.WalkView, q, T, R int, ctTable, diag []float64, seed, first uint64) (dMax, m2Max float64) {
	n := vw.NumNodes()
	s.grow(n)
	if len(s.hist2) < len(s.hist) {
		s.hist2 = make([]float64, len(s.hist))
	}
	s.prepBatch(R, seed, first)
	for w := range s.keys {
		s.keys[w] = uint64(q)<<32 | uint64(w)
	}
	if cap(s.fkeys) < R {
		s.fkeys = make([]uint64, R)
		s.fwts = make([]float64, R)
	}
	m := R
	maxNode := uint32(n - 1)
	for t := 1; t <= T && m > 0; t++ {
		w0 := ctTable[t]
		fm := 0
		if m >= batchSortMin {
			m = s.stepSorted(vw, m)
			s.sortFrontier(m, maxNode)
			keys := s.keys
			for i := 0; i < m; {
				v := int32(keys[i] >> 32)
				j := i
				for j < m && int32(keys[j]>>32) == v {
					j++
				}
				if d0 := w0 * diag[v]; d0 != 0 {
					for k := i; k < j; k++ {
						s.fkeys[fm] = keys[k]
						s.fwts[fm] = d0
						fm++
					}
				}
				i = j
			}
		} else {
			keys := s.keys[:m]
			out := 0
			for i := 0; i < m; i++ {
				v := int32(keys[i] >> 32)
				base, d := vw.InRow(v)
				if d == 0 {
					continue // dead entry: spawned its last walk already
				}
				id := uint32(keys[i])
				next := vw.InAt(base + int64(s.srcs[id].Intn(int(d))))
				if d0 := w0 * diag[next]; d0 != 0 {
					s.fkeys[fm] = uint64(next)<<32 | uint64(id)
					s.fwts[fm] = d0
					fm++
				}
				keys[out] = uint64(next)<<32 | uint64(id)
				out++
			}
			m = out
		}
		d, m2 := s.forwardDepositWave(vw, t, fm)
		if d > dMax {
			dMax = d
		}
		if m2 > m2Max {
			m2Max = m2
		}
	}
	return dMax, m2Max
}

// forwardDepositWave is forwardDeposit tracking the squared-deposit
// histogram: it returns this batch's largest single deposit and the
// largest CUMULATIVE hist2 entry it bumped (hist2 carries across waves,
// so the returned maximum is already population-wide).
func (s *Scratch) forwardDepositWave(vw *graph.WalkView, steps, fm int) (dMax, m2Max float64) {
	for sub := 0; sub < steps && fm > 0; sub++ {
		keys, wts := s.fkeys, s.fwts
		out := 0
		for i := 0; i < fm; i++ {
			v := int32(keys[i] >> 32)
			base, dOut := vw.OutRow(v)
			if dOut == 0 {
				continue
			}
			id := uint32(keys[i])
			next := vw.OutAt(base + int64(s.srcs[id].Intn(int(dOut))))
			keys[out] = uint64(next)<<32 | uint64(id)
			wts[out] = wts[i] * (float64(dOut) / float64(vw.InDeg(next)))
			out++
		}
		fm = out
	}
	for i := 0; i < fm; i++ {
		if w := s.fwts[i]; w != 0 {
			k := int32(s.fkeys[i] >> 32)
			s.Add(k, w)
			if w > dMax {
				dMax = w
			}
			m2 := s.hist2[k] + w*w
			s.hist2[k] = m2
			if m2 > m2Max {
				m2Max = m2
			}
		}
	}
	return dMax, m2Max
}

// FlushScaledInto is FlushInto with every emitted value multiplied by
// scale; it also clears the squared-deposit histogram the wave kernels
// maintain, so the scratch is clean for either engine afterwards.
func (s *Scratch) FlushScaledInto(v *sparse.Vector, scale float64) {
	s.sortTouched()
	v.Idx = v.Idx[:0]
	v.Val = v.Val[:0]
	for _, k := range s.touched {
		if x := s.hist[k]; x != 0 {
			v.Idx = append(v.Idx, k)
			v.Val = append(v.Val, x*scale)
		}
		s.hist[k] = 0
		if int(k) < len(s.hist2) {
			s.hist2[k] = 0
		}
	}
	s.touched = s.touched[:0]
}
