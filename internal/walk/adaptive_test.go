package walk

import (
	"math"
	"testing"

	"cloudwalker/internal/gen"
	"cloudwalker/internal/sparse"
	"cloudwalker/internal/xrand"
)

func TestAdaptiveScheduleProperties(t *testing.T) {
	for _, budget := range []int{1, 16, 32, 33, 50, 100, 126, 1000, 2000, 12345} {
		sched := AdaptiveSchedule(budget)
		if len(sched) == 0 {
			t.Fatalf("budget %d: empty schedule", budget)
		}
		if sched[len(sched)-1] != budget {
			t.Fatalf("budget %d: schedule %v does not end at the cap", budget, sched)
		}
		prev := 0
		for k, cum := range sched {
			if cum <= prev {
				t.Fatalf("budget %d: schedule %v not strictly increasing", budget, sched)
			}
			if k < len(sched)-1 && cum%2 != 0 {
				t.Fatalf("budget %d: intermediate target %d is odd in %v", budget, cum, sched)
			}
			prev = cum
		}
		if len(sched) > 1 && sched[0] < adaptiveMinWave {
			t.Fatalf("budget %d: first wave %d below minimum %d", budget, sched[0], adaptiveMinWave)
		}
	}
	if AdaptiveSchedule(0) != nil || AdaptiveSchedule(-5) != nil {
		t.Fatal("non-positive budget must yield no schedule")
	}
	// The paper-default query budget: the exact schedule the docs quote.
	got := AdaptiveSchedule(1000)
	want := []int{126, 252, 504, 1000}
	if len(got) != len(want) {
		t.Fatalf("schedule(1000) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("schedule(1000) = %v, want %v", got, want)
		}
	}
}

func TestAdaptiveHalfWidth(t *testing.T) {
	if !math.IsInf(AdaptiveHalfWidth(0, 0, 0, 1, 1), 1) {
		t.Fatal("n = 0 must yield an infinite half-width")
	}
	// Zero variance: only the range term remains.
	L := AdaptiveLogTerm(0.05, 3)
	hw := AdaptiveHalfWidth(0, 0, 100, L, 0.6)
	if want := 0.6 * L / 100; math.Abs(hw-want) > 1e-15 {
		t.Fatalf("zero-variance half-width %g, want %g", hw, want)
	}
	// Adding variance can only widen the interval.
	if AdaptiveHalfWidth(50, 40, 100, L, 0.6) <= hw {
		t.Fatal("variance did not widen the interval")
	}
	// More samples shrink it.
	if AdaptiveHalfWidth(0, 0, 200, L, 0.6) >= hw {
		t.Fatal("more samples did not shrink the interval")
	}
}

// TestWaveMergeMatchesOneShotBitExact pins the cap bit-identity at the
// kernel level: running the walker population in AdaptiveSchedule waves
// through DistCountsWave + WaveAccum.Merge and scaling once must equal
// the one-shot fixed-budget distributions bit for bit — on a budget
// large enough that early levels run the sorted engine and the dying
// tail runs scatter mode, so the invariant covers both regimes and the
// crossover.
func TestWaveMergeMatchesOneShotBitExact(t *testing.T) {
	g, err := gen.RMAT(500, 4000, gen.DefaultRMAT, 13)
	if err != nil {
		t.Fatal(err)
	}
	vw := g.WalkView()
	const (
		T    = 8
		R    = batchSortMin * 4
		seed = 77
	)
	for _, start := range []int{0, 7, 499} {
		var oneBuf DistBuf
		one := NewScratch(g.NumNodes()).DistributionsInto(&oneBuf, vw, start, T, R, seed)

		s := NewScratch(g.NumNodes())
		var wav WaveAccum
		var buf DistBuf
		wav.Reset(T)
		prev := 0
		for _, cum := range AdaptiveSchedule(R) {
			rw := cum - prev
			trace := make([]int32, T*rw)
			s.DistCountsWave(&buf, vw, start, T, rw, seed, uint64(prev), trace)
			wav.Merge(&buf, T)
			prev = cum
		}
		waved := wav.Scale(T, R)
		for lvl := 0; lvl <= T; lvl++ {
			a, b := one[lvl], waved[lvl]
			// Level 0 of the one-shot buffer is the start unit vector; the
			// wave kernel only counts levels >= 1 (callers reconstruct the
			// exact t = 0 term themselves).
			if lvl == 0 {
				continue
			}
			if len(a.Idx) != len(b.Idx) {
				t.Fatalf("start %d level %d: nnz %d vs %d", start, lvl, len(a.Idx), len(b.Idx))
			}
			for k := range a.Idx {
				if a.Idx[k] != b.Idx[k] || a.Val[k] != b.Val[k] {
					t.Fatalf("start %d level %d entry %d: (%d,%g) vs (%d,%g)",
						start, lvl, k, a.Idx[k], a.Val[k], b.Idx[k], b.Val[k])
				}
			}
		}
	}
}

// TestDistCountsWaveTraceMatchesReplay verifies the per-walker position
// trace against an independent replay: walker first+w at level t must be
// exactly where StepIn walking substream NewStream(seed, first+w) says it
// is, and -1 forever after death. The trace is what adaptive stopping
// computes its meeting samples from, so any drift here would silently
// bias the confidence interval.
func TestDistCountsWaveTraceMatchesReplay(t *testing.T) {
	g, err := gen.RMAT(300, 2400, gen.DefaultRMAT, 19)
	if err != nil {
		t.Fatal(err)
	}
	vw := g.WalkView()
	const (
		T     = 6
		seed  = 5
		first = 37
	)
	for _, R := range []int{16, batchSortMin * 2} { // scatter-only and sorted regimes
		s := NewScratch(g.NumNodes())
		var buf DistBuf
		trace := make([]int32, T*R)
		s.DistCountsWave(&buf, vw, 11, T, R, seed, first, trace)
		for w := 0; w < R; w++ {
			src := xrand.NewStream(seed, first+uint64(w))
			cur := 11
			for lvl := 1; lvl <= T; lvl++ {
				want := int32(-1)
				if cur >= 0 {
					cur = StepIn(g, cur, src)
					want = int32(cur)
				}
				if got := trace[(lvl-1)*R+w]; got != want {
					t.Fatalf("R=%d walker %d level %d: trace %d, replay %d", R, w, lvl, got, want)
				}
			}
		}
	}
}

// TestEstimateRowAdaptiveCapMatchesFixed: with eps below any achievable
// half-width the adaptive row runs every wave to the cap and must emit
// the fixed-budget row bit for bit.
func TestEstimateRowAdaptiveCapMatchesFixed(t *testing.T) {
	g, err := gen.RMAT(500, 4000, gen.DefaultRMAT, 13)
	if err != nil {
		t.Fatal(err)
	}
	const (
		T    = 10
		R    = batchSortMin * 3
		c    = 0.6
		seed = 3
	)
	L := AdaptiveLogTerm(0.05, len(AdaptiveSchedule(R))-1)
	for _, i := range []int{0, 7, 499} {
		want := NewRowEstimator(g, R).EstimateRow(i, T, c, seed)
		var out sparse.Vector
		st := NewRowEstimator(g, R).EstimateRowAdaptiveInto(i, T, c, seed, 0, L, c, &out)
		if st.Stopped || st.Walkers != R {
			t.Fatalf("row %d: eps=0 must run the cap, got %+v", i, st)
		}
		if len(out.Idx) != len(want.Idx) {
			t.Fatalf("row %d: nnz %d vs %d", i, len(out.Idx), len(want.Idx))
		}
		for k := range want.Idx {
			if out.Idx[k] != want.Idx[k] || out.Val[k] != want.Val[k] {
				t.Fatalf("row %d entry %d: (%d,%g) vs (%d,%g)",
					i, k, out.Idx[k], out.Val[k], want.Idx[k], want.Val[k])
			}
		}
	}
}

// TestEstimateRowAdaptiveStopsOnStar: on a star graph every walker from a
// leaf dies instantly, all meeting samples are zero, and the estimator
// must stop at the first checkpoint — the cheapest possible row.
func TestEstimateRowAdaptiveStopsOnStar(t *testing.T) {
	g, err := gen.Star(50)
	if err != nil {
		t.Fatal(err)
	}
	const R = 1000
	sched := AdaptiveSchedule(R)
	L := AdaptiveLogTerm(0.05, len(sched)-1)
	var out sparse.Vector
	st := NewRowEstimator(g, R).EstimateRowAdaptiveInto(1, 8, 0.6, 3, 0.05, L, 0.6, &out)
	if !st.Stopped || st.Walkers != sched[0] {
		t.Fatalf("star row should stop at the first checkpoint %d, got %+v", sched[0], st)
	}
	if len(out.Idx) != 1 || out.Idx[0] != 1 || out.Val[0] != 1 {
		t.Fatalf("star row must still be the exact unit diagonal, got %+v", out)
	}
}

// TestSingleSourceWalkWaveCapMatchesFixed: accumulated over the full
// schedule and scaled once, the wave kernel must agree with the one-shot
// single-source estimator to float accumulation-order noise (the wave
// path multiplies by 1/R at flush instead of ride-along, so bit identity
// is NOT promised — a few ulps is the contract).
func TestSingleSourceWalkWaveCapMatchesFixed(t *testing.T) {
	g, err := gen.RMAT(400, 3200, gen.DefaultRMAT, 23)
	if err != nil {
		t.Fatal(err)
	}
	vw := g.WalkView()
	const (
		T    = 6
		R    = 600
		c    = 0.6
		seed = 11
	)
	ct := make([]float64, T+1)
	ct[0] = 1
	for i := 1; i <= T; i++ {
		ct[i] = ct[i-1] * c
	}
	diag := make([]float64, g.NumNodes())
	for i := range diag {
		diag[i] = 1 - c/2
	}
	var want sparse.Vector
	NewScratch(g.NumNodes()).SingleSourceWalkInto(vw, 9, T, R, ct, diag, seed, &want)

	s := NewScratch(g.NumNodes())
	prev := 0
	for _, cum := range AdaptiveSchedule(R) {
		s.SingleSourceWalkWave(vw, 9, T, cum-prev, ct, diag, seed, uint64(prev))
		prev = cum
	}
	var got sparse.Vector
	s.FlushScaledInto(&got, 1.0/float64(R))

	// The fixed path adds the t = 0 self-term hist[q] += diag[q]; the wave
	// kernel deliberately skips it (core pins the query node). Compare all
	// other entries, and the query node modulo that term.
	wantAt := map[int32]float64{}
	for k, idx := range want.Idx {
		wantAt[idx] = want.Val[k]
	}
	gotAt := map[int32]float64{}
	for k, idx := range got.Idx {
		gotAt[idx] = got.Val[k]
	}
	wantAt[9] -= diag[9]
	for idx, wv := range wantAt {
		gv := gotAt[idx]
		if math.Abs(gv-wv) > 1e-12*(1+math.Abs(wv)) {
			t.Fatalf("node %d: wave %g vs fixed %g", idx, gv, wv)
		}
	}
	for idx := range gotAt {
		if _, ok := wantAt[idx]; !ok {
			t.Fatalf("wave deposited at node %d, fixed path did not", idx)
		}
	}
	// The scratch must be clean for the NEXT query: hist2 cleared.
	for i, v := range s.hist2 {
		if v != 0 {
			t.Fatalf("hist2[%d] = %g after flush", i, v)
		}
	}
}

// TestWaveAccumReuse: a WaveAccum reset between queries must not leak
// counts from the previous query.
func TestWaveAccumReuse(t *testing.T) {
	g, err := gen.RMAT(200, 1600, gen.DefaultRMAT, 29)
	if err != nil {
		t.Fatal(err)
	}
	vw := g.WalkView()
	const (
		T    = 5
		R    = 64
		seed = 41
	)
	run := func(wav *WaveAccum, start int) []sparse.Vector {
		s := NewScratch(g.NumNodes())
		var buf DistBuf
		wav.Reset(T)
		trace := make([]int32, T*R)
		s.DistCountsWave(&buf, vw, start, T, R, seed, 0, trace)
		wav.Merge(&buf, T)
		return wav.Scale(T, R)
	}
	var fresh, reused WaveAccum
	_ = run(&reused, 3) // dirty it
	a := run(&fresh, 17)
	b := run(&reused, 17)
	for lvl := 1; lvl <= T; lvl++ {
		if len(a[lvl].Idx) != len(b[lvl].Idx) {
			t.Fatalf("level %d: nnz %d vs %d", lvl, len(a[lvl].Idx), len(b[lvl].Idx))
		}
		for k := range a[lvl].Idx {
			if a[lvl].Idx[k] != b[lvl].Idx[k] || a[lvl].Val[k] != b[lvl].Val[k] {
				t.Fatalf("level %d entry %d differs after reuse", lvl, k)
			}
		}
	}
}
