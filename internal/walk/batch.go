package walk

// The batched level-synchronous walk engine.
//
// Instead of running each of the R walkers to completion (a dependent
// chain of cold CSR row loads per walker), the engine advances ALL live
// walkers one level at a time. Walker state is structure-of-arrays: the
// live frontier is a []uint64 of packed (node << 32 | walkerID) keys,
// and every walker draws from its own RNG substream
// xrand.NewStream(seed, walkerID). Per-walker substreams are what make
// the batch shape invisible: however the frontier is ordered, sorted,
// or sharded across workers, walker w consumes exactly the same draws,
// so output is bit-identical for a fixed seed at any worker count.
//
// Each level runs in one of two modes, chosen by a crossover heuristic
// on the live-frontier size:
//
//   - sorted (large frontiers): after stepping, the frontier is
//     LSD-radix-sorted by current node. Co-located walkers then share
//     one row-descriptor load on the next level (the probe on the
//     benchmark rmat graph shows 45 walkers/node on level 1 and ~1.3
//     deep into the walk), the remaining row loads issue in ascending
//     address order, and the per-level distribution falls out of the
//     sorted runs as (node, count) pairs with no histogram scatter and
//     no separate extraction sort.
//
//   - scatter (small frontiers): sorting cannot amortize, so walkers
//     step in frontier order and counts accumulate in the dense int32
//     histogram; extraction sorts only the touched list.
//
// Both modes count integer visits and convert each per-node total to
// float64 exactly once, so mode selection never changes emitted values.
// A walker that reaches a zero-in-degree node is counted at that final
// position and lingers one level: the next step's d == 0 row-descriptor
// check drops it (a whole dead run costs one load in sorted mode).
// Testing liveness eagerly per child was measured slower — deaths are
// the minority, and the deferred check piggybacks on a load the stepping
// loop already makes. The engine stops at the first childless level.

import (
	"cloudwalker/internal/graph"
	"cloudwalker/internal/sparse"
	"cloudwalker/internal/xrand"
)

// batchSortMin is the crossover point of the level engine: frontiers
// with at least this many live walkers are radix-sorted by node per
// level, smaller ones use the scatter mode. The value was tuned on the
// BENCH_walk.json workload (rmat 20k/200k): around 100–200 live walkers
// the two modes cost the same; row-estimation frontiers (R ≈ 50) must
// stay in scatter mode and pair-query frontiers (R' ≈ 500–1000 live)
// must sort.
const batchSortMin = 128

// prepBatch sizes the frontier and seeds one RNG substream per walker:
// walker w draws from xrand.NewStream(seed, first+w). first offsets the
// walker-ID space so sharded drivers can give every global walker its
// own stream.
func (s *Scratch) prepBatch(R int, seed, first uint64) {
	if cap(s.keys) < R {
		s.keys = make([]uint64, R)
		s.keysB = make([]uint64, R)
	}
	s.keys = s.keys[:R]
	s.keysB = s.keysB[:R]
	if cap(s.srcs) < R {
		s.srcs = make([]xrand.Source, R)
	}
	s.srcs = s.srcs[:R]
	xrand.SeedStreams(s.srcs, seed, first)
}

// stepSorted advances a frontier that is sorted by node one level.
// Runs of co-located walkers share one row-descriptor load and one
// degree bound; each walker still draws from its own substream. The
// children (walkers alive at the new level, dead ends included — they
// occupy their final node at this level) land unsorted in s.keys.
// Returns the child count.
func (s *Scratch) stepSorted(vw *graph.WalkView, m int) int {
	keys, dst := s.keys[:m], s.keysB
	out := 0
	for i := 0; i < m; {
		v := int32(keys[i] >> 32)
		base, d := vw.InRow(v)
		j := i
		if d == 0 {
			// Whole run is at a dead end: these walkers were counted at
			// their final node last level and are dropped here, one
			// descriptor load for the entire run.
			for j < m && int32(keys[j]>>32) == v {
				j++
			}
			i = j
			continue
		}
		nd := int(d)
		for ; j < m && int32(keys[j]>>32) == v; j++ {
			id := uint32(keys[j])
			next := vw.InAt(base + int64(s.srcs[id].Intn(nd)))
			dst[out] = uint64(next)<<32 | uint64(id)
			out++
		}
		i = j
	}
	s.keys, s.keysB = s.keysB, s.keys
	return out
}

// sortFrontier LSD-radix-sorts keys[:m] by the node half of the packed
// key (walker IDs ride along in the low half). maxNode bounds the pass
// count: two byte passes cover any graph below 2^16 nodes. All byte
// histograms are built in ONE read over the input, so a p-pass sort
// touches the data p+1 times instead of 2p.
func (s *Scratch) sortFrontier(m int, maxNode uint32) {
	a := radixByHigh32(s.keys[:m:m], s.keysB[:m:m], maxNode)
	// An odd pass count (graphs of 2^16+ nodes) leaves the sorted data
	// in the swap buffer; swap the buffers rather than copying it home.
	if m > 0 && &a[0] != &s.keys[0] {
		s.keys, s.keysB = s.keysB, s.keys
	}
}

// radixByHigh32 LSD-radix-sorts a by the high 32 bits of each packed
// key, using b as the swap buffer, and returns the slice holding the
// sorted data (a or b; LSD needs one array move per byte pass, so the
// result parity follows the pass count). maxKey bounds the pass count.
// The sort is stable in the low half: equal high keys keep their input
// order, which the engine relies on both for walker-ID determinism and
// for the level-ordered accumulation of row pairs.
func radixByHigh32(a, b []uint64, maxKey uint32) []uint64 {
	if maxKey < 1<<16 {
		// The common shape (benchmark graphs included): two byte passes
		// with both histograms built in one read over the input. The
		// high-byte prefix loop stops at the largest reachable digit.
		var c0, c1 [256]int32
		for _, k := range a {
			c0[uint8(k>>32)]++
			c1[uint8(k>>40)]++
		}
		hi := int(maxKey>>8) + 1
		s0 := int32(0)
		for i := 0; i < 256; i++ {
			n := c0[i]
			c0[i] = s0
			s0 += n
		}
		s1 := int32(0)
		for i := 0; i < hi; i++ {
			n := c1[i]
			c1[i] = s1
			s1 += n
		}
		for _, k := range a {
			d := uint8(k >> 32)
			pos := c0[d]
			c0[d] = pos + 1
			b[pos] = k
		}
		for _, k := range b {
			d := uint8(k >> 40)
			pos := c1[d]
			c1[d] = pos + 1
			a[pos] = k
		}
		return a
	}
	var counts [256]int32
	for shift := uint(32); maxKey>>(shift-32) != 0; shift += 8 {
		clear(counts[:])
		for _, k := range a {
			counts[uint8(k>>shift)]++
		}
		sum := int32(0)
		for i := range counts {
			c := counts[i]
			counts[i] = sum
			sum += c
		}
		for _, k := range a {
			d := uint8(k >> shift)
			pos := counts[d]
			counts[d] = pos + 1
			b[pos] = k
		}
		a, b = b, a
	}
	return a
}

// emitRuns scans a sorted frontier and appends one (node, count) entry
// per run to the level-t output. Dead-end runs stay in the frontier:
// stepSorted skips a whole dead run with one descriptor load, which
// profiling showed is far cheaper than compacting the array or even
// testing the dead bitset per run here. Termination still falls out —
// an all-dead frontier produces zero children on the next step.
func (s *Scratch) emitRuns(buf *DistBuf, t, m int) {
	idx, cnt := buf.idx[t], buf.cnt[t]
	keys := s.keys
	for i := 0; i < m; {
		v := int32(keys[i] >> 32)
		j := i
		for j < m && int32(keys[j]>>32) == v {
			j++
		}
		idx = append(idx, v)
		cnt = append(cnt, int32(j-i))
		i = j
	}
	buf.idx[t], buf.cnt[t] = idx, cnt
}

// stepScatter advances an unsorted frontier one level, counting every
// child in the dense histogram (touched is appended without a dedup
// branch; duplicates collapse at extraction). Dead children stay in the
// frontier for the next level's d == 0 check to drop uncounted — a
// deferred descriptor load per dying walker, which measured cheaper
// than a liveness test on every child. Returns the child count.
func (s *Scratch) stepScatter(vw *graph.WalkView, m int) int {
	keys := s.keys[:m]
	out := 0
	for i := 0; i < m; i++ {
		v := int32(keys[i] >> 32)
		base, d := vw.InRow(v)
		if d == 0 {
			continue // dead entry: counted at its final node last level
		}
		id := uint32(keys[i])
		next := vw.InAt(base + int64(s.srcs[id].Intn(int(d))))
		s.touched = append(s.touched, next)
		s.cnt[next]++
		keys[out] = uint64(next)<<32 | uint64(id)
		out++
	}
	return out
}

// emitCounts extracts the level-t (node, count) entries accumulated by
// stepScatter: sort the touched list, skip duplicate occurrences (their
// slot is already zeroed), clear as it goes.
func (s *Scratch) emitCounts(buf *DistBuf, t int) {
	s.sortTouched()
	idx, cnt := buf.idx[t], buf.cnt[t]
	for _, k := range s.touched {
		if c := s.cnt[k]; c != 0 {
			idx = append(idx, k)
			cnt = append(cnt, c)
			s.cnt[k] = 0
		}
	}
	s.touched = s.touched[:0]
	buf.idx[t], buf.cnt[t] = idx, cnt
}

// distCounts is the count-domain core of the distribution kernels: it
// runs R walkers (IDs first..first+R-1 in the seed's stream space) from
// start for T levels and fills buf.idx/buf.cnt with per-level integer
// visit counts. Callers divide by the total walker population exactly
// once (DistBuf.scale), so shards merge by integer addition.
func (s *Scratch) distCounts(buf *DistBuf, vw *graph.WalkView, start, T, R int, seed, first uint64) {
	s.distCountsTraced(buf, vw, start, T, R, seed, first, nil)
}

// distCountsTraced is distCounts with optional per-walker position
// tracing: when trace is non-nil (length T·R, pre-filled with -1 by the
// caller), trace[(t-1)·R + w] records the node walker w occupies at
// level t. After the step at level t the frontier holds exactly the
// walkers counted at that level — dead arrivals included, dropped
// uncounted by the next level's d == 0 check — so scattering the
// frontier keys is an exact position record in both stepping modes.
func (s *Scratch) distCountsTraced(buf *DistBuf, vw *graph.WalkView, start, T, R int, seed, first uint64, trace []int32) {
	s.grow(vw.NumNodes())
	buf.prep(T)
	buf.idx[0] = append(buf.idx[0], int32(start))
	buf.cnt[0] = append(buf.cnt[0], int32(R))
	s.prepBatch(R, seed, first)
	for w := range s.keys {
		s.keys[w] = uint64(start)<<32 | uint64(w)
	}
	// m counts frontier entries; in sorted mode dead walkers linger one
	// level (stepSorted drops a dead run with one descriptor load), so
	// the loop ends at the first childless step rather than on a
	// per-walker liveness count — cheaper, and the emitted counts are
	// identical either way.
	m := R
	maxNode := uint32(vw.NumNodes() - 1)
	for t := 1; t <= T && m > 0; t++ {
		if m >= batchSortMin {
			m = s.stepSorted(vw, m)
			s.sortFrontier(m, maxNode)
			s.emitRuns(buf, t, m)
		} else {
			m = s.stepScatter(vw, m)
			s.emitCounts(buf, t)
		}
		if trace != nil {
			row := trace[(t-1)*R : t*R]
			for _, k := range s.keys[:m] {
				row[uint32(k)] = int32(k >> 32)
			}
		}
	}
}

// DistributionsInto is the scratch-backed core of Distributions: it
// runs R backward walkers from start for T steps over the walk view and
// fills buf with the empirical distributions p̂_t for t = 0..T. The
// returned slice aliases buf. Walker w draws from
// xrand.NewStream(seed, w); the warm path performs zero allocations.
func (s *Scratch) DistributionsInto(buf *DistBuf, vw *graph.WalkView, start, T, R int, seed uint64) []sparse.Vector {
	if R <= 0 || T < 0 {
		s.grow(vw.NumNodes())
		return s.degenerateInto(buf, start)
	}
	s.distCounts(buf, vw, start, T, R, seed, 0)
	return buf.scale(T, R)
}

// DistributionsViewInto is DistributionsInto against any graph.View. It
// dispatches to the batched engine when the view can serve a WalkView
// (a *Graph, or a *Dynamic with no pending updates) and falls back to
// per-walker interface stepping otherwise. Both paths give walker w the
// same substream and count integer visits, so the output for a dirty
// overlay is bit-identical to compacting it first and walking the CSR.
func (s *Scratch) DistributionsViewInto(buf *DistBuf, g graph.View, start, T, R int, seed uint64) []sparse.Vector {
	if vw := graph.FastWalkView(g); vw != nil {
		return s.DistributionsInto(buf, vw, start, T, R, seed)
	}
	if R <= 0 || T < 0 {
		s.grow(g.NumNodes())
		return s.degenerateInto(buf, start)
	}
	buf.prep(T)
	buf.idx[0] = append(buf.idx[0], int32(start))
	buf.cnt[0] = append(buf.cnt[0], int32(R))
	s.prepBatch(R, seed, 0)
	// On a LIVE overlay the node count can grow mid-walk (a concurrent
	// insert naming a fresh id lands in a row we then step into), so the
	// count histogram cannot be sized from a NumNodes() read taken at
	// entry. Step in frontier order (each walker consumes its own
	// substream, so the stepping order of the dense engine is
	// immaterial), tracking the highest id actually visited and sizing
	// the histogram before each level's counting.
	s.grow(g.NumNodes())
	maxSeen := start
	keys := s.keys
	for w := range keys {
		keys[w] = uint64(start)<<32 | uint64(w)
	}
	for t := 1; t <= T; t++ {
		m := 0
		for _, k := range keys {
			cur := StepIn(g, int(k>>32), &s.srcs[uint32(k)])
			if cur < 0 {
				continue
			}
			if cur > maxSeen {
				maxSeen = cur
			}
			keys[m] = uint64(cur)<<32 | (k & 0xffffffff)
			m++
		}
		keys = keys[:m]
		s.grow(maxSeen + 1)
		for _, k := range keys {
			next := int32(k >> 32)
			s.touched = append(s.touched, next)
			s.cnt[next]++
		}
		s.emitCounts(buf, t)
		if m == 0 {
			break
		}
	}
	return buf.scale(T, R)
}

// RowEstimator estimates indexing rows a_i = Σ_t c^t (P^t e_i)∘(P^t e_i)
// with reusable buffers: the batch walk state advances the R walkers
// level-synchronously while every level's visit counts append as packed
// (node << 32 | level << 16 | count) deposits. Extraction radix-sorts
// the deposit list by node once and combines levels in one scan — no
// dense accumulation array is touched at all, which profiling showed
// was a third of row-estimation time. It is what the offline stage's
// workers use: after the first row, the only allocation per row is the
// returned vector itself (and EstimateRowInto avoids even that).
type RowEstimator struct {
	vw   *graph.WalkView
	walk *Scratch // frontier, substreams, and per-level counts
	r    int

	pairs, pairsB []uint64  // packed per-(node, level) deposits + sort swap
	ct            []float64 // ct[t] = c^t, rebuilt when (T, c) changes
	ctC           float64

	// Dense fallback for R ≥ 2^16, where a visit count can overflow the
	// packed layout's 16 count bits: accumulate into a float histogram
	// instead (bit-identical — each (node, level) deposit is the same
	// ct·(count/R)² term, summed in the same level order).
	row *Scratch

	// Adaptive-mode state (EstimateRowAdaptiveInto): per-wave count
	// buffer, the cross-wave integer accumulator, and the per-walker
	// position trace the stopping statistic reads.
	wbuf  DistBuf
	wav   WaveAccum
	trace []int32
}

// NewRowEstimator creates an estimator for graph g with R walkers.
func NewRowEstimator(g *graph.Graph, r int) *RowEstimator {
	return &RowEstimator{
		vw:   g.WalkView(),
		walk: NewScratch(0),
		r:    r,
	}
}

// EstimateRow runs R walkers for T steps from node i and returns the
// Monte Carlo row (including the t = 0 unit diagonal term). Walker w of
// row i draws from xrand.NewStream(seed, i·R+w) — every walker of the
// whole offline build has a globally unique substream, so the estimated
// system is independent of how rows are sharded across workers.
func (re *RowEstimator) EstimateRow(i, T int, c float64, seed uint64) *sparse.Vector {
	re.estimate(i, T, c, seed)
	if re.r >= 1<<16 {
		return re.row.TakeVector()
	}
	out := &sparse.Vector{}
	re.emitPairs(out)
	return out
}

// EstimateRowInto is EstimateRow flushing into a caller-owned vector
// (reset first, keeping capacity): the zero-allocation steady state for
// callers that do not need to keep the row.
func (re *RowEstimator) EstimateRowInto(i, T int, c float64, seed uint64, out *sparse.Vector) {
	re.estimate(i, T, c, seed)
	if re.r >= 1<<16 {
		re.row.FlushInto(out)
		return
	}
	out.Idx = out.Idx[:0]
	out.Val = out.Val[:0]
	re.emitPairs(out)
}

func (re *RowEstimator) estimate(i, T int, c float64, seed uint64) {
	s := re.walk
	s.grow(re.vw.NumNodes())
	if len(re.ct) < T+1 || re.ctC != c {
		re.ct = append(re.ct[:0], 1)
		for t := 1; t <= T; t++ {
			re.ct = append(re.ct, re.ct[t-1]*c)
		}
		re.ctC = c
	}
	R := re.r
	s.prepBatch(R, seed, uint64(i)*uint64(R))
	for w := range s.keys {
		s.keys[w] = uint64(i)<<32 | uint64(w)
	}
	dense := R >= 1<<16
	if dense {
		if re.row == nil {
			re.row = NewScratch(re.vw.NumNodes())
		}
		re.row.grow(re.vw.NumNodes())
		re.row.Add(int32(i), 1) // t = 0
	} else {
		re.pairs = append(re.pairs[:0], uint64(i)<<32|uint64(R)) // t = 0
	}
	m := R
	maxNode := uint32(re.vw.NumNodes() - 1)
	invR := 1.0 / float64(R)
	t0 := 1
	if !dense && R < batchSortMin && T >= 1 {
		// Scatter-mode level one: every walker sits on row i, so the
		// draws aggregate through a tiny per-index count buffer — one
		// deposit per distinct in-neighbor instead of one per walker,
		// before the frontier has spread anywhere.
		m = re.rowStepLevel1(i)
		t0 = 2
	}
	for t := t0; t <= T && m > 0; t++ {
		if m >= batchSortMin {
			m = s.stepSorted(re.vw, m)
			s.sortFrontier(m, maxNode)
			if dense {
				s.foldRuns(re.row, re.ct[t], invR, m)
			} else {
				re.appendRunPairs(t, m)
			}
		} else if dense {
			m = s.stepScatter(re.vw, m)
			s.foldCounts(re.row, re.ct[t], invR)
		} else {
			m = re.rowStepScatter(t, m)
		}
	}
}

// appendRunPairs packs one deposit per sorted run, the pair-domain twin
// of foldRuns.
func (re *RowEstimator) appendRunPairs(t, m int) {
	keys := re.walk.keys
	lvl := uint64(t) << 16
	for i := 0; i < m; {
		v := keys[i] >> 32
		j := i
		for j < m && keys[j]>>32 == v {
			j++
		}
		re.pairs = append(re.pairs, v<<32|lvl|uint64(j-i))
		i = j
	}
}

// rowStepLevel1 runs the first scatter-mode level of a row walk, where
// the whole frontier occupies row i: one descriptor load serves every
// walker, and for rows up to 64 wide the drawn indices count into a
// stack buffer so the level deposits one pair per distinct in-neighbor
// (summing at emit covers duplicate edges). Each walker still draws
// once from its own substream, so the trajectory — and therefore every
// later level — is identical to the generic path.
func (re *RowEstimator) rowStepLevel1(i int) int {
	s := re.walk
	vw := re.vw
	base, d := vw.InRow(int32(i))
	if d == 0 {
		return 0
	}
	keys := s.keys
	const lvl = uint64(1) << 16
	if d > 64 {
		for w := range keys {
			next := vw.InAt(base + int64(s.srcs[w].Intn(int(d))))
			re.pairs = append(re.pairs, uint64(uint32(next))<<32|lvl|1)
			keys[w] = uint64(uint32(next))<<32 | uint64(uint32(w))
		}
		return len(keys)
	}
	var cbuf [64]int32
	for w := range keys {
		idx := s.srcs[w].Intn(int(d))
		cbuf[idx]++
		keys[w] = uint64(uint32(vw.InAt(base+int64(idx))))<<32 | uint64(uint32(w))
	}
	for idx := int64(0); idx < int64(d); idx++ {
		if c := cbuf[idx]; c != 0 {
			re.pairs = append(re.pairs, uint64(uint32(vw.InAt(base+idx)))<<32|lvl|uint64(uint32(c)))
		}
	}
	return len(keys)
}

// rowStepScatter is the row path's scatter-mode level: step each walker
// and append one count-1 deposit per child, skipping the count
// histogram entirely — the emit-time sort aggregates equal (node, level)
// deposits anyway, so counting eagerly was pure overhead at this
// frontier size. Dead children linger for the next level's d == 0 check,
// as in stepScatter.
func (re *RowEstimator) rowStepScatter(t, m int) int {
	s := re.walk
	vw := re.vw
	keys := s.keys[:m]
	lvl := uint64(t) << 16
	pairs := re.pairs
	out := 0
	for i := 0; i < m; i++ {
		v := int32(keys[i] >> 32)
		base, d := vw.InRow(v)
		if d == 0 {
			continue // dead entry: deposited at its final node last level
		}
		id := uint32(keys[i])
		next := vw.InAt(base + int64(s.srcs[id].Intn(int(d))))
		pairs = append(pairs, uint64(uint32(next))<<32|lvl|1)
		keys[out] = uint64(uint32(next))<<32 | uint64(id)
		out++
	}
	re.pairs = pairs
	return out
}

// emitPairs sorts the deposit list by node and appends the combined row
// to out. The radix sort is stable and deposits were appended in level
// order, so equal (node, level) deposits (count-1 entries from scatter
// levels, pre-aggregated runs from sorted levels) sit adjacent with
// their counts summing exactly, and each node's c^t·(count/R)² terms
// accumulate in level order — the same float64 sequence as the dense
// fallback, bit for bit.
func (re *RowEstimator) emitPairs(out *sparse.Vector) {
	if cap(re.pairsB) < len(re.pairs) {
		re.pairsB = make([]uint64, len(re.pairs))
	}
	a := radixByHigh32(re.pairs, re.pairsB[:len(re.pairs)], uint32(re.vw.NumNodes()-1))
	invR := 1.0 / float64(re.r)
	if cap(out.Idx) == 0 {
		out.Idx = make([]int32, 0, len(a))
		out.Val = make([]float64, 0, len(a))
	}
	prev := int32(-1)
	for i := 0; i < len(a); {
		p := a[i]
		hi := p >> 16 // (node, level)
		c := p & 0xffff
		j := i + 1
		for j < len(a) && a[j]>>16 == hi {
			c += a[j] & 0xffff
			j++
		}
		i = j
		node := int32(p >> 32)
		var val float64
		if lvl := hi & 0xffff; lvl == 0 {
			val = 1 // the exact t = 0 diagonal term
		} else {
			frac := float64(c) * invR
			val = re.ct[lvl] * frac * frac
		}
		if node == prev {
			out.Val[len(out.Val)-1] += val
		} else {
			out.Idx = append(out.Idx, node)
			out.Val = append(out.Val, val)
			prev = node
		}
	}
}

// foldRuns folds one level's sorted runs into the row scratch —
// row[v] += c^t (count/R)² per run — the dense (big-R) twin of
// appendRunPairs.
func (s *Scratch) foldRuns(row *Scratch, ct, invR float64, m int) {
	keys := s.keys
	for i := 0; i < m; {
		v := int32(keys[i] >> 32)
		j := i
		for j < m && int32(keys[j]>>32) == v {
			j++
		}
		frac := float64(j-i) * invR
		row.Add(v, ct*frac*frac)
		i = j
	}
}

// foldCounts folds one level's scatter-mode counts into the row scratch
// and clears them, the dense (big-R) twin of appendCountPairs. Each node
// gets exactly one deposit per level in level order, so the dense and
// packed row paths accumulate identical float64 sums.
func (s *Scratch) foldCounts(row *Scratch, ct, invR float64) {
	for _, k := range s.touched {
		if c := s.cnt[k]; c != 0 {
			frac := float64(c) * invR
			row.Add(k, ct*frac*frac)
			s.cnt[k] = 0
		}
	}
	s.touched = s.touched[:0]
}

// SingleSourceWalkInto runs the MCSS estimator (DESIGN.md §3.4) with the
// batched engine and flushes the estimate into out. Phase one advances
// the R walkers level-synchronously; at level t every walker alive at t
// spawns a phase-two importance-weighted forward walk of t steps,
// seeded with weight c^t·diag[k_t]/R (the diag lookup amortizes over
// co-located walkers), and the phase-two batch itself runs
// level-synchronously with weights riding the sort. A walker's draws
// interleave exactly as in the per-walker formulation — backward step
// t, then its t forward steps, then backward step t+1 — but on its own
// substream xrand.NewStream(seed, walkerID), so the batch order never
// changes its trajectory. ctTable[t] must hold c^t for t = 0..T.
func (s *Scratch) SingleSourceWalkInto(vw *graph.WalkView, q, T, R int, ctTable, diag []float64, seed uint64, out *sparse.Vector) {
	s.grow(vw.NumNodes())
	invR := 1.0 / float64(R)
	// t = 0 term: c^0 · x_q deposited at q itself.
	s.Add(int32(q), diag[q])
	s.prepBatch(R, seed, 0)
	for w := range s.keys {
		s.keys[w] = uint64(q)<<32 | uint64(w)
	}
	if cap(s.fkeys) < R {
		s.fkeys = make([]uint64, R)
		s.fwts = make([]float64, R)
	}
	m := R
	maxNode := uint32(vw.NumNodes() - 1)
	for t := 1; t <= T && m > 0; t++ {
		w0 := ctTable[t] * invR
		fm := 0
		if m >= batchSortMin {
			m = s.stepSorted(vw, m)
			s.sortFrontier(m, maxNode)
			// Spawn phase two per sorted run (one diag load per node).
			// Dead runs spawn too — a walker at its final node still
			// seeds a forward walk — and then stay in the frontier for
			// stepSorted to skip, as in emitRuns.
			keys := s.keys
			for i := 0; i < m; {
				v := int32(keys[i] >> 32)
				j := i
				for j < m && int32(keys[j]>>32) == v {
					j++
				}
				if d0 := w0 * diag[v]; d0 != 0 {
					for k := i; k < j; k++ {
						s.fkeys[fm] = keys[k]
						s.fwts[fm] = d0
						fm++
					}
				}
				i = j
			}
		} else {
			keys := s.keys[:m]
			out := 0
			for i := 0; i < m; i++ {
				v := int32(keys[i] >> 32)
				base, d := vw.InRow(v)
				if d == 0 {
					continue // dead entry: spawned its last walk already
				}
				id := uint32(keys[i])
				next := vw.InAt(base + int64(s.srcs[id].Intn(int(d))))
				if d0 := w0 * diag[next]; d0 != 0 {
					s.fkeys[fm] = uint64(next)<<32 | uint64(id)
					s.fwts[fm] = d0
					fm++
				}
				keys[out] = uint64(next)<<32 | uint64(id)
				out++
			}
			m = out
		}
		s.forwardDeposit(vw, t, fm)
	}
	s.FlushInto(out)
}

// forwardDeposit runs the fm phase-two walkers forward `steps` levels,
// structure-of-arrays and level-synchronous, each walker on its own
// substream, and deposits the surviving importance weights at their
// endpoints. The batch is deliberately NOT sorted by node: forward
// frontiers spread across high-out-degree rows where co-location is too
// thin to pay for moving a 16-byte (key, weight) pair per radix pass —
// measured, sorting here cost more than every row load it saved. The
// weight update float64(dOut)/float64(inDeg) is the same IEEE divide as
// ForwardWeightedView, so deposits are bit-identical to the per-walker
// formulation walker by walker.
func (s *Scratch) forwardDeposit(vw *graph.WalkView, steps, fm int) {
	for sub := 0; sub < steps && fm > 0; sub++ {
		keys, wts := s.fkeys, s.fwts
		out := 0
		for i := 0; i < fm; i++ {
			v := int32(keys[i] >> 32)
			base, dOut := vw.OutRow(v)
			if dOut == 0 {
				continue
			}
			id := uint32(keys[i])
			next := vw.OutAt(base + int64(s.srcs[id].Intn(int(dOut))))
			keys[out] = uint64(next)<<32 | uint64(id)
			wts[out] = wts[i] * (float64(dOut) / float64(vw.InDeg(next)))
			out++
		}
		fm = out
	}
	for i := 0; i < fm; i++ {
		if w := s.fwts[i]; w != 0 {
			s.Add(int32(s.fkeys[i]>>32), w)
		}
	}
}

// StepInView is StepIn against a precomputed walk view: the offset base
// and degree come from one load pair. It returns -1 if v has no in-links
// (consuming no randomness, like StepIn).
func StepInView(vw *graph.WalkView, v int32, src *xrand.Source) int32 {
	row, d := vw.InRow(v)
	if d == 0 {
		return -1
	}
	return vw.InAt(row + int64(src.Intn(int(d))))
}

// ForwardWeightedView is ForwardWeighted against a precomputed walk view.
// The current node's out-row offset pair (needed for the neighbor fetch
// anyway) yields its degree for free, and the destination's in-degree
// comes from the view's dense int32 array — 4 bytes instead of a 16-byte
// offset pair, the one degree lookup a CSR graph cannot serve from an
// already-loaded line. float64(d) conversion is exact, so the quotient —
// and therefore every estimate built on it — is bit-identical to the CSR
// formulation. (The view's reciprocal in-degrees would save the divide
// too, but multiplying by a rounded reciprocal is not bit-identical to
// dividing — see the WalkView determinism contract.)
func ForwardWeightedView(vw *graph.WalkView, k int32, w float64, steps int, src *xrand.Source) (int32, float64) {
	cur := k
	for s := 0; s < steps; s++ {
		row, dOut := vw.OutRow(cur)
		if dOut == 0 {
			return -1, 0
		}
		next := vw.OutAt(row + int64(src.Intn(int(dOut))))
		w *= float64(dOut) / float64(vw.InDeg(next))
		cur = next
	}
	return cur, w
}
