package walk

import (
	"slices"

	"cloudwalker/internal/graph"
	"cloudwalker/internal/sparse"
	"cloudwalker/internal/xrand"
)

// Histogram counts walker visits with a dense array plus a touched list,
// giving O(1) increments and O(touched) reset — no map overhead. One
// Histogram is reused across all (node, step) pairs processed by a
// worker, which makes the offline indexing stage's inner loop allocation-
// free. Not safe for concurrent use; give each worker its own.
type Histogram struct {
	counts  []int32
	touched []int32
}

// NewHistogram returns a histogram over n slots.
func NewHistogram(n int) *Histogram {
	return &Histogram{counts: make([]int32, n)}
}

// Add increments slot k.
func (h *Histogram) Add(k int32) {
	if h.counts[k] == 0 {
		h.touched = append(h.touched, k)
	}
	h.counts[k]++
}

// Touched returns the number of distinct slots hit since the last Reset.
func (h *Histogram) Touched() int { return len(h.touched) }

// ToVector converts the counts into a sparse vector scaled by 1/scale
// (pass the walker count to obtain an empirical distribution) and resets
// the histogram.
func (h *Histogram) ToVector(scale float64) *sparse.Vector {
	v := &sparse.Vector{
		Idx: make([]int32, 0, len(h.touched)),
		Val: make([]float64, 0, len(h.touched)),
	}
	// Sort the touched list: insertion order is walker order, and sparse
	// vectors need ascending indices.
	slices.Sort(h.touched)
	inv := 1.0 / scale
	for _, k := range h.touched {
		v.Idx = append(v.Idx, k)
		v.Val = append(v.Val, float64(h.counts[k])*inv)
		h.counts[k] = 0
	}
	h.touched = h.touched[:0]
	return v
}

// FoldSquaredInto folds c^t · (count/scale)² for every touched slot into
// a dense Scratch row — the per-step contribution to an indexing row
// a_i — and resets the histogram. (It replaced a map-accumulator fold
// with identical per-slot contribution order, so accumulated float64
// sums are bit-identical to the original implementation.)
func (h *Histogram) FoldSquaredInto(s *Scratch, ct, scale float64) {
	inv := 1.0 / scale
	for _, k := range h.touched {
		frac := float64(h.counts[k]) * inv
		s.Add(k, ct*frac*frac)
		h.counts[k] = 0
	}
	h.touched = h.touched[:0]
}

// RowEstimator estimates indexing rows a_i = Σ_t c^t (P^t e_i)∘(P^t e_i)
// with reusable buffers. It is the allocation-lean counterpart of calling
// Distributions + SquareValues per node and is what the offline stage's
// workers use: after the first row, the only allocation per row is the
// returned vector itself (which the caller stores).
type RowEstimator struct {
	vw   *graph.WalkView
	hist *Histogram
	row  *Scratch // dense accumulation of the row across steps
	cur  []int32  // current walker positions; -1 = dead
}

// NewRowEstimator creates an estimator for graph g with R walkers.
func NewRowEstimator(g *graph.Graph, r int) *RowEstimator {
	return &RowEstimator{
		vw:   g.WalkView(),
		hist: NewHistogram(g.NumNodes()),
		row:  NewScratch(g.NumNodes()),
		cur:  make([]int32, r),
	}
}

// EstimateRow runs R walkers for T steps from node i and returns the
// Monte Carlo row (including the t = 0 unit diagonal term).
func (re *RowEstimator) EstimateRow(i int, T int, c float64, src *xrand.Source) *sparse.Vector {
	re.row.Add(int32(i), 1) // t = 0
	r := len(re.cur)
	for w := range re.cur {
		re.cur[w] = int32(i)
	}
	alive := r
	ct := 1.0
	scale := float64(r)
	for t := 1; t <= T && alive > 0; t++ {
		ct *= c
		for w := range re.cur {
			v := re.cur[w]
			if v < 0 {
				continue
			}
			next := StepInView(re.vw, v, src)
			if next < 0 {
				re.cur[w] = -1
				alive--
				continue
			}
			re.cur[w] = next
			re.hist.Add(next)
		}
		re.hist.FoldSquaredInto(re.row, ct, scale)
	}
	return re.row.TakeVector()
}
