package walk

import (
	"math"
	"testing"
	"testing/quick"

	"cloudwalker/internal/gen"
	"cloudwalker/internal/sparse"
	"cloudwalker/internal/xrand"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(10)
	h.Add(3)
	h.Add(3)
	h.Add(7)
	if h.Touched() != 2 {
		t.Fatalf("touched %d", h.Touched())
	}
	v := h.ToVector(4)
	if v.NNZ() != 2 || v.Get(3) != 0.5 || v.Get(7) != 0.25 {
		t.Fatalf("vector %+v", v)
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	// Reset happened: reuse gives fresh counts.
	h.Add(1)
	v2 := h.ToVector(1)
	if v2.NNZ() != 1 || v2.Get(1) != 1 {
		t.Fatalf("after reset %+v", v2)
	}
}

func TestHistogramSortedOutput(t *testing.T) {
	h := NewHistogram(100)
	for _, k := range []int32{42, 7, 99, 0, 55, 7} {
		h.Add(k)
	}
	v := h.ToVector(1)
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	if v.NNZ() != 5 {
		t.Fatalf("NNZ %d", v.NNZ())
	}
}

func TestHistogramFoldSquaredInto(t *testing.T) {
	h := NewHistogram(5)
	h.Add(2)
	h.Add(2)
	h.Add(4)
	s := NewScratch(5)
	h.FoldSquaredInto(s, 0.5, 2) // (2/2)²·0.5 at 2; (1/2)²·0.5 at 4
	v := s.TakeVector()
	if math.Abs(v.Get(2)-0.5) > 1e-12 || math.Abs(v.Get(4)-0.125) > 1e-12 {
		t.Fatalf("squared fold %+v", v)
	}
	if h.Touched() != 0 {
		t.Fatal("FoldSquaredInto did not reset")
	}
}

func TestRowEstimatorMatchesReference(t *testing.T) {
	// The estimator must produce the same row distributionally as the
	// reference walker-major implementation: compare expectations against
	// the exact operator on a large walker budget.
	g, err := gen.ErdosRenyi(30, 180, 17)
	if err != nil {
		t.Fatal(err)
	}
	p := sparse.NewTransition(g)
	const (
		T = 5
		R = 40000
		c = 0.6
	)
	// Exact row.
	exactRow := sparse.Unit(3)
	v := sparse.Unit(3)
	ct := 1.0
	for t := 1; t <= T; t++ {
		v = p.Apply(v)
		ct *= c
		exactRow = sparse.AddScaled(exactRow, ct, v.SquareValues())
	}
	est := NewRowEstimator(g, R)
	got := est.EstimateRow(3, T, c, xrand.New(9))
	diff := sparse.AddScaled(got, -1, exactRow)
	if m := maxAbs(diff); m > 0.01 {
		t.Fatalf("row estimator error %g", m)
	}
}

func TestRowEstimatorReuseIsClean(t *testing.T) {
	// Rows estimated after reuse must not leak state from prior rows.
	g, err := gen.RMAT(40, 200, gen.DefaultRMAT, 7)
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewRowEstimator(g, 200)
	reused := NewRowEstimator(g, 200)
	// Burn a row on the reused estimator first.
	_ = reused.EstimateRow(11, 6, 0.6, xrand.New(1))
	a := fresh.EstimateRow(5, 6, 0.6, xrand.New(2))
	b := reused.EstimateRow(5, 6, 0.6, xrand.New(2))
	diff := sparse.AddScaled(a, -1, b)
	if maxAbs(diff) != 0 {
		t.Fatal("estimator reuse changed results")
	}
}

func TestRowEstimatorDanglingStart(t *testing.T) {
	g, err := gen.Star(5) // leaves have no in-links
	if err != nil {
		t.Fatal(err)
	}
	est := NewRowEstimator(g, 50)
	row := est.EstimateRow(1, 8, 0.6, xrand.New(3))
	// Walkers die instantly: row is just the unit diagonal.
	if row.NNZ() != 1 || row.Get(1) != 1 {
		t.Fatalf("dangling row %+v", row)
	}
}

// Property: estimator rows always include the unit diagonal and have
// non-negative entries bounded by 1 + c/(1-c).
func TestQuickRowEstimatorInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		src := xrand.New(seed)
		n := src.Intn(25) + 3
		g, err := gen.ErdosRenyi(n, 3*n, seed)
		if err != nil {
			return false
		}
		est := NewRowEstimator(g, 60)
		i := src.Intn(n)
		row := est.EstimateRow(i, 6, 0.6, src)
		if row.Validate() != nil {
			return false
		}
		if row.Get(i) < 1 {
			return false
		}
		bound := 1 + 0.6/(1-0.6) + 1e-9
		for _, val := range row.Val {
			if val < 0 || val > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRowEstimator(b *testing.B) {
	g, err := gen.RMAT(10000, 100000, gen.DefaultRMAT, 1)
	if err != nil {
		b.Fatal(err)
	}
	est := NewRowEstimator(g, 100)
	src := xrand.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.EstimateRow(i%g.NumNodes(), 10, 0.6, src)
	}
}

func BenchmarkRowReference(b *testing.B) {
	// The map-based reference path for comparison with BenchmarkRowEstimator.
	g, err := gen.RMAT(10000, 100000, gen.DefaultRMAT, 1)
	if err != nil {
		b.Fatal(err)
	}
	src := xrand.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dists := Distributions(g, i%g.NumNodes(), 10, 100, src)
		row := sparse.Unit(i % g.NumNodes())
		ct := 1.0
		for t := 1; t < len(dists); t++ {
			ct *= 0.6
			row = sparse.AddScaled(row, ct, dists[t].SquareValues())
		}
	}
}
