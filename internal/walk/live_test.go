package walk

import (
	"sync"
	"testing"

	"cloudwalker/internal/graph"
	"cloudwalker/internal/xrand"
)

// TestWalkOverLiveOverlayNoTear hammers a Dynamic overlay with edge
// churn while walk kernels run against it through the View interface.
// The kernels read each row as one stable snapshot, so a mutation
// landing between a degree read and a neighbor fetch must never panic
// (index out of range) or produce a non-finite importance weight —
// the failure mode of pairing separate InDegree/InNeighborAt calls.
// Run under -race in CI.
func TestWalkOverLiveOverlayNoTear(t *testing.T) {
	base := graph.MustFromEdges(12, [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 0}, {4, 1}, {5, 1}, {6, 2}, {7, 3},
		{8, 1}, {9, 1}, {10, 1}, {11, 1},
	})
	d := graph.NewDynamic(base)

	stop := make(chan struct{})
	var mutator, walkers sync.WaitGroup
	mutator.Add(1)
	go func() {
		defer mutator.Done()
		// Churn node 1's in-row (the walkers' hub) between long and
		// short: exactly the shrinking-row race the snapshot read fixes.
		// Every round also inserts an edge from a FRESH node id into the
		// hub, so walkers step into ids beyond the node count they
		// started with — the histogram-sizing hazard of the interface
		// distributions path.
		fresh := 12
		for {
			select {
			case <-stop:
				return
			default:
			}
			for src := 4; src < 12; src++ {
				if _, err := d.DeleteEdge(src, 1); err != nil {
					t.Error(err)
					return
				}
			}
			for src := 4; src < 12; src++ {
				if _, err := d.InsertEdge(src, 1); err != nil {
					t.Error(err)
					return
				}
			}
			if _, err := d.InsertEdge(fresh, 1); err != nil {
				t.Error(err)
				return
			}
			fresh++
		}
	}()

	for w := 0; w < 4; w++ {
		walkers.Add(1)
		go func(w int) {
			defer walkers.Done()
			src := xrand.NewStream(77, uint64(w))
			for i := 0; i < 300; i++ {
				for _, vec := range Distributions(d, 1, 6, 50, uint64(w*1000+i)) {
					for _, x := range vec.Val {
						// 1+1e-9 allows the count→float rounding of a
						// count/R conversion; anything beyond means a
						// torn read double-counted a walker.
						if x < 0 || x > 1+1e-9 {
							t.Errorf("distribution mass %v out of [0,1]", x)
							return
						}
					}
				}
				if _, wt := ForwardWeighted(d, 1, 1.0, 4, src); wt < 0 || wt != wt || wt > 1e12 {
					t.Errorf("importance weight %v (torn degree read?)", wt)
					return
				}
				MeetingTime(d, 0, 1, 8, src)
			}
		}(w)
	}

	walkers.Wait()
	close(stop)
	mutator.Wait()
}
