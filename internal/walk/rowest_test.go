package walk

import (
	"testing"
	"testing/quick"

	"cloudwalker/internal/gen"
	"cloudwalker/internal/graph"
	"cloudwalker/internal/sparse"
	"cloudwalker/internal/xrand"
)

func TestRowEstimatorMatchesReference(t *testing.T) {
	// The estimator must produce the same row distributionally as the
	// exact operator: compare expectations on a large walker budget.
	g, err := gen.ErdosRenyi(30, 180, 17)
	if err != nil {
		t.Fatal(err)
	}
	p := sparse.NewTransition(g)
	const (
		T = 5
		R = 40000
		c = 0.6
	)
	// Exact row.
	exactRow := sparse.Unit(3)
	v := sparse.Unit(3)
	ct := 1.0
	for t := 1; t <= T; t++ {
		v = p.Apply(v)
		ct *= c
		exactRow = sparse.AddScaled(exactRow, ct, v.SquareValues())
	}
	est := NewRowEstimator(g, R)
	got := est.EstimateRow(3, T, c, 9)
	diff := sparse.AddScaled(got, -1, exactRow)
	if m := maxAbs(diff); m > 0.01 {
		t.Fatalf("row estimator error %g", m)
	}
}

func TestRowEstimatorReuseIsClean(t *testing.T) {
	// Rows estimated after reuse must not leak state from prior rows.
	g, err := gen.RMAT(40, 200, gen.DefaultRMAT, 7)
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewRowEstimator(g, 200)
	reused := NewRowEstimator(g, 200)
	// Burn a row on the reused estimator first.
	_ = reused.EstimateRow(11, 6, 0.6, 1)
	a := fresh.EstimateRow(5, 6, 0.6, 2)
	b := reused.EstimateRow(5, 6, 0.6, 2)
	diff := sparse.AddScaled(a, -1, b)
	if maxAbs(diff) != 0 {
		t.Fatal("estimator reuse changed results")
	}
}

func TestRowEstimatorIntoMatchesEstimateRow(t *testing.T) {
	g, err := gen.RMAT(60, 360, gen.DefaultRMAT, 21)
	if err != nil {
		t.Fatal(err)
	}
	est := NewRowEstimator(g, 120)
	var out sparse.Vector
	est.EstimateRowInto(9, 6, 0.6, 5, &out) // dirty the reused vector
	est.EstimateRowInto(4, 6, 0.6, 5, &out)
	want := NewRowEstimator(g, 120).EstimateRow(4, 6, 0.6, 5)
	if len(out.Idx) != len(want.Idx) {
		t.Fatalf("nnz %d vs %d", len(out.Idx), len(want.Idx))
	}
	for k := range want.Idx {
		if out.Idx[k] != want.Idx[k] || out.Val[k] != want.Val[k] {
			t.Fatalf("entry %d differs: (%d,%g) vs (%d,%g)",
				k, out.Idx[k], out.Val[k], want.Idx[k], want.Val[k])
		}
	}
}

// rowReference recomputes an indexing row the naive way — walker w of
// row i walks its whole trajectory on substream NewStream(seed, i·R+w),
// counts aggregate per (level, node) in a map, and per-node deposits
// accumulate in level order — exactly the estimator's definition with
// none of the engine's batching, sorting, or mode switching.
func rowReference(g *graph.Graph, i, T, R int, c float64, seed uint64) map[int32]float64 {
	counts := make([]map[int32]int, T+1)
	for t := range counts {
		counts[t] = make(map[int32]int)
	}
	for w := 0; w < R; w++ {
		src := xrand.NewStream(seed, uint64(i)*uint64(R)+uint64(w))
		cur := i
		for t := 1; t <= T; t++ {
			cur = StepIn(g, cur, src)
			if cur < 0 {
				break
			}
			counts[t][int32(cur)]++
		}
	}
	row := map[int32]float64{int32(i): 1}
	ct := 1.0
	invR := 1.0 / float64(R)
	for t := 1; t <= T; t++ {
		ct *= c
		for k, n := range counts[t] {
			frac := float64(n) * invR
			row[k] += ct * frac * frac
		}
	}
	return row
}

// TestRowEstimatorMatchesNaiveBitExact pins the engine's determinism
// contract: batching, frontier sorting, the scatter fallback, and the
// crossover between them must be invisible — the row is bit-identical
// to walking every walker independently on its own substream. R is
// chosen above the sort crossover so the first levels run sorted and
// the tail (after walkers die off on the power-law graph) runs in
// scatter mode, exercising both modes and the switch in one row.
func TestRowEstimatorMatchesNaiveBitExact(t *testing.T) {
	g, err := gen.RMAT(500, 4000, gen.DefaultRMAT, 13)
	if err != nil {
		t.Fatal(err)
	}
	const R = batchSortMin * 3
	for _, i := range []int{0, 7, 499} {
		row := NewRowEstimator(g, R).EstimateRow(i, 10, 0.6, 3)
		want := rowReference(g, i, 10, R, 0.6, 3)
		if row.NNZ() != len(want) {
			t.Fatalf("row %d: nnz %d, reference %d", i, row.NNZ(), len(want))
		}
		for k, idx := range row.Idx {
			if row.Val[k] != want[idx] {
				t.Fatalf("row %d entry %d: %g, reference %g", i, idx, row.Val[k], want[idx])
			}
		}
	}
}

func TestRowEstimatorDanglingStart(t *testing.T) {
	g, err := gen.Star(5) // leaves have no in-links
	if err != nil {
		t.Fatal(err)
	}
	est := NewRowEstimator(g, 50)
	row := est.EstimateRow(1, 8, 0.6, 3)
	// Walkers die instantly: row is just the unit diagonal.
	if row.NNZ() != 1 || row.Get(1) != 1 {
		t.Fatalf("dangling row %+v", row)
	}
}

// Property: estimator rows always include the unit diagonal and have
// non-negative entries bounded by 1 + c/(1-c).
func TestQuickRowEstimatorInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		src := xrand.New(seed)
		n := src.Intn(25) + 3
		g, err := gen.ErdosRenyi(n, 3*n, seed)
		if err != nil {
			return false
		}
		est := NewRowEstimator(g, 60)
		i := src.Intn(n)
		row := est.EstimateRow(i, 6, 0.6, seed)
		if row.Validate() != nil {
			return false
		}
		if row.Get(i) < 1 {
			return false
		}
		bound := 1 + 0.6/(1-0.6) + 1e-9
		for _, val := range row.Val {
			if val < 0 || val > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRowEstimator(b *testing.B) {
	g, err := gen.RMAT(10000, 100000, gen.DefaultRMAT, 1)
	if err != nil {
		b.Fatal(err)
	}
	est := NewRowEstimator(g, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.EstimateRow(i%g.NumNodes(), 10, 0.6, 1)
	}
}
