package walk

import (
	"slices"

	"cloudwalker/internal/graph"
	"cloudwalker/internal/sparse"
	"cloudwalker/internal/xrand"
)

// Scratch is the reusable per-worker workspace of the Monte Carlo query
// kernels. It replaces the map accumulators (sparse.Accumulator) on every
// hot path with a dense float64 histogram plus a touched list: O(1)
// deposits, O(touched log touched) extraction, and — once warm — zero
// allocations per query.
//
// Determinism: deposits are accumulated per index in exactly the order
// the walkers produce them, so the per-index float64 sums (and therefore
// the emitted vectors) are bit-identical to the map-accumulator
// implementation this replaces.
//
// A Scratch is not safe for concurrent use; give each worker its own
// (core.Querier pools them).
type Scratch struct {
	hist    []float64 // dense accumulation target; zero outside Add..Flush
	touched []int32   // indices with nonzero hist entries, insertion order

	// Walker position matrix for Distributions: pos[r*(T+1)+t] is walker
	// r's node at step t, valid for t <= end[r].
	pos []int32
	end []int32

	// tmp is the radix-sort swap buffer for sortTouched.
	tmp []int32
}

// NewScratch returns a scratch able to accumulate over n nodes.
func NewScratch(n int) *Scratch {
	return &Scratch{hist: make([]float64, n)}
}

// grow ensures the dense histogram covers n nodes.
func (s *Scratch) grow(n int) {
	if len(s.hist) < n {
		s.hist = make([]float64, n)
	}
}

// Add deposits w at index k. Deposits must be positive (the histogram
// uses hist[k] == 0 as the "untouched" marker, which positive sums can
// never re-enter); every walk estimator in this package deposits
// probability mass or positive importance weights, so the precondition
// holds by construction.
func (s *Scratch) Add(k int32, w float64) {
	if s.hist[k] == 0 {
		s.touched = append(s.touched, k)
	}
	s.hist[k] += w
}

// sortTouched sorts the touched list ascending. Touched lists on the
// query path run to R' ≈ 10⁴ dense small ints, where an LSD radix sort
// over the scratch's swap buffer beats comparison sorting by ~3× (and
// profiling showed sorting was half of single-pair query time under the
// original shell sort). Short lists fall back to the stdlib sort.
func (s *Scratch) sortTouched() {
	a := s.touched
	const radixMin = 64
	if len(a) < radixMin {
		slices.Sort(a)
		return
	}
	max := int32(0)
	for _, v := range a {
		if v > max {
			max = v
		}
	}
	if cap(s.tmp) < len(a) {
		s.tmp = make([]int32, len(a))
	}
	b := s.tmp[:len(a)]
	var counts [256]int32
	for shift := 0; max>>shift > 0; shift += 8 {
		clear(counts[:])
		for _, v := range a {
			counts[(v>>shift)&0xff]++
		}
		sum := int32(0)
		for i := range counts {
			c := counts[i]
			counts[i] = sum
			sum += c
		}
		for _, v := range a {
			b[counts[(v>>shift)&0xff]] = v
			counts[(v>>shift)&0xff]++
		}
		a, b = b, a
	}
	// An odd number of byte passes leaves the sorted data in the swap
	// buffer; copy it home.
	if &a[0] != &s.touched[0] {
		copy(s.touched, a)
	}
}

// FlushInto sorts the touched indices, appends the accumulated (index,
// value) entries to v (which is reset first, keeping its capacity), and
// clears the scratch for reuse. Entries whose accumulated value is
// exactly zero (only possible for an explicit Add of 0 that was never
// followed by a positive deposit — e.g. a zero diagonal term) are
// dropped, matching sparse.Accumulator.ToVector.
func (s *Scratch) FlushInto(v *sparse.Vector) {
	s.sortTouched()
	v.Idx = v.Idx[:0]
	v.Val = v.Val[:0]
	for _, k := range s.touched {
		if x := s.hist[k]; x != 0 {
			v.Idx = append(v.Idx, k)
			v.Val = append(v.Val, x)
		}
		s.hist[k] = 0
	}
	s.touched = s.touched[:0]
}

// TakeVector is FlushInto for callers that must hand ownership of the
// result away (e.g. rows stored into the indexing matrix): it allocates
// a right-sized sorted vector, fills it, and clears the scratch.
func (s *Scratch) TakeVector() *sparse.Vector {
	v := &sparse.Vector{
		Idx: make([]int32, 0, len(s.touched)),
		Val: make([]float64, 0, len(s.touched)),
	}
	s.FlushInto(v)
	return v
}

// DistBuf owns the per-step output buffers of DistributionsInto. The
// returned vectors alias its storage and stay valid until the next
// DistributionsInto call with the same buffer.
type DistBuf struct {
	idx  [][]int32
	val  [][]float64
	vecs []sparse.Vector
}

// prep resets the buffer for T+1 step vectors, keeping capacity.
func (b *DistBuf) prep(T int) {
	for len(b.idx) < T+1 {
		b.idx = append(b.idx, nil)
		b.val = append(b.val, nil)
	}
	if cap(b.vecs) < T+1 {
		b.vecs = make([]sparse.Vector, T+1)
	}
	b.vecs = b.vecs[:T+1]
}

// DistributionsInto is the scratch-backed core of Distributions: it runs
// R backward walkers from start for T steps over the walk view and fills
// buf with the empirical distributions p̂_t for t = 0..T. The returned
// slice aliases buf. Output is bit-identical to Distributions (same RNG
// consumption order — walker-major — and same per-index accumulation
// order), but the warm path performs zero allocations.
func (s *Scratch) DistributionsInto(buf *DistBuf, vw *graph.WalkView, start, T, R int, src *xrand.Source) []sparse.Vector {
	s.grow(vw.NumNodes())
	if R <= 0 || T < 0 {
		return s.degenerateInto(buf, start)
	}
	buf.prep(T)

	// Phase 1: run the walkers in walker-major order (the RNG contract),
	// recording positions. pos is O(R·T), independent of graph size.
	stride := T + 1
	s.prepWalkers(T, R)
	for r := 0; r < R; r++ {
		base := r * stride
		cur := int32(start)
		s.pos[base] = cur
		last := int32(0)
		for t := 1; t <= T; t++ {
			cur = StepInView(vw, cur, src)
			if cur < 0 {
				break
			}
			s.pos[base+t] = cur
			last = int32(t)
		}
		s.end[r] = last
	}
	return s.emitInto(buf, T, R)
}

// DistributionsViewInto is DistributionsInto against any graph.View. It
// dispatches to the zero-allocation dense kernel when the view can serve
// a WalkView (a *Graph, or a *Dynamic with no pending updates) and falls
// back to interface stepping otherwise. Both paths consume randomness
// identically (one Intn per live step, walker-major), so the output for
// a dirty overlay is bit-identical to compacting it first and walking
// the CSR.
func (s *Scratch) DistributionsViewInto(buf *DistBuf, g graph.View, start, T, R int, src *xrand.Source) []sparse.Vector {
	if vw := graph.FastWalkView(g); vw != nil {
		return s.DistributionsInto(buf, vw, start, T, R, src)
	}
	if R <= 0 || T < 0 {
		s.grow(g.NumNodes())
		return s.degenerateInto(buf, start)
	}
	buf.prep(T)
	stride := T + 1
	s.prepWalkers(T, R)
	// On a LIVE overlay the node count can grow mid-walk (a concurrent
	// insert naming a fresh id lands in a row we then step into), so the
	// histogram cannot be sized from a NumNodes() read taken at entry.
	// Track the highest id the walkers actually visited and size for
	// that before scattering.
	maxSeen := int32(start)
	for r := 0; r < R; r++ {
		base := r * stride
		cur := int(start)
		s.pos[base] = int32(cur)
		last := int32(0)
		for t := 1; t <= T; t++ {
			cur = StepIn(g, cur, src)
			if cur < 0 {
				break
			}
			if int32(cur) > maxSeen {
				maxSeen = int32(cur)
			}
			s.pos[base+t] = int32(cur)
			last = int32(t)
		}
		s.end[r] = last
	}
	s.grow(int(maxSeen) + 1)
	return s.emitInto(buf, T, R)
}

// degenerateInto emits the single unit vector of a degenerate request
// (R <= 0 or T < 0).
func (s *Scratch) degenerateInto(buf *DistBuf, start int) []sparse.Vector {
	buf.prep(0) // T may be negative; the degenerate result is one unit vector
	buf.idx[0] = append(buf.idx[0][:0], int32(start))
	buf.val[0] = append(buf.val[0][:0], 1)
	buf.vecs = buf.vecs[:1]
	buf.vecs[0] = sparse.Vector{Idx: buf.idx[0], Val: buf.val[0]}
	return buf.vecs
}

// prepWalkers sizes the position matrix for R walkers over T steps.
func (s *Scratch) prepWalkers(T, R int) {
	if need := R * (T + 1); cap(s.pos) < need {
		s.pos = make([]int32, need)
	} else {
		s.pos = s.pos[:need]
	}
	if cap(s.end) < R {
		s.end = make([]int32, R)
	} else {
		s.end = s.end[:R]
	}
}

// emitInto is phase 2 of the distribution kernels: per step, scatter the
// surviving walkers' positions into the dense histogram (walker order —
// preserving the per-index accumulation order of the map implementation)
// and emit the sorted sparse vector.
func (s *Scratch) emitInto(buf *DistBuf, T, R int) []sparse.Vector {
	stride := T + 1
	w := 1.0 / float64(R)
	for t := 0; t <= T; t++ {
		for r := 0; r < R; r++ {
			if s.end[r] >= int32(t) {
				s.Add(s.pos[r*stride+t], w)
			}
		}
		s.sortTouched()
		idx, val := buf.idx[t][:0], buf.val[t][:0]
		for _, k := range s.touched {
			idx = append(idx, k)
			val = append(val, s.hist[k])
			s.hist[k] = 0
		}
		s.touched = s.touched[:0]
		buf.idx[t], buf.val[t] = idx, val
		buf.vecs[t] = sparse.Vector{Idx: idx, Val: val}
	}
	return buf.vecs
}

// StepInView is StepIn against a precomputed walk view: the offset base
// and degree come from one load pair. It returns -1 if v has no in-links
// (consuming no randomness, like StepIn).
func StepInView(vw *graph.WalkView, v int32, src *xrand.Source) int32 {
	row, d := vw.InRow(v)
	if d == 0 {
		return -1
	}
	return vw.InAt(row + int64(src.Intn(int(d))))
}

// ForwardWeightedView is ForwardWeighted against a precomputed walk view.
// The current node's out-row offset pair (needed for the neighbor fetch
// anyway) yields its degree for free, and the destination's in-degree
// comes from the view's dense int32 array — 4 bytes instead of a 16-byte
// offset pair, the one degree lookup a CSR graph cannot serve from an
// already-loaded line. float64(d) conversion is exact, so the quotient —
// and therefore every estimate built on it — is bit-identical to the CSR
// formulation. (The view's reciprocal in-degrees would save the divide
// too, but multiplying by a rounded reciprocal is not bit-identical to
// dividing — see the WalkView determinism contract.)
func ForwardWeightedView(vw *graph.WalkView, k int32, w float64, steps int, src *xrand.Source) (int32, float64) {
	cur := k
	for s := 0; s < steps; s++ {
		row, dOut := vw.OutRow(cur)
		if dOut == 0 {
			return -1, 0
		}
		next := vw.OutAt(row + int64(src.Intn(int(dOut))))
		w *= float64(dOut) / float64(vw.InDeg(next))
		cur = next
	}
	return cur, w
}
