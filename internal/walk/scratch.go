package walk

import (
	"slices"

	"cloudwalker/internal/sparse"
	"cloudwalker/internal/xrand"
)

// Scratch is the reusable per-worker workspace of the Monte Carlo query
// kernels: a dense float64 histogram plus touched list for weighted
// deposits (MCSS endpoint weights, indexing-row accumulation), a dense
// int32 count histogram for unweighted visit counts, and the
// structure-of-arrays walker state of the batched level-synchronous walk
// engine (see batch.go). Once warm, every kernel built on a Scratch runs
// with zero allocations per query.
//
// Determinism: the distribution and row kernels accumulate integer visit
// counts and convert each per-node total to float64 exactly once, so
// their output is independent of walker batch order, frontier sorting,
// and worker sharding. The weighted MCSS deposits are float64 sums in a
// canonical engine-defined order, deterministic for a fixed seed.
//
// A Scratch is not safe for concurrent use; give each worker its own
// (core.Querier pools them).
type Scratch struct {
	hist    []float64 // dense accumulation target; zero outside Add..Flush
	touched []int32   // indices with nonzero entries; may contain duplicates

	// hist2 is the per-node sum of SQUARED deposits maintained by the
	// adaptive wave kernels (adaptive.go) for their per-entry confidence
	// heuristic; allocated lazily, cleared by FlushScaledInto.
	hist2 []float64

	// cnt is the dense per-level visit-count histogram of the scatter
	// (small-frontier) walk mode; zero outside one level's count..emit.
	cnt []int32

	// Batched walk engine state: the live frontier as packed
	// (node << 32 | walker) keys plus a swap buffer for the radix sort,
	// and one RNG substream per walker.
	keys, keysB []uint64
	srcs        []xrand.Source

	// Forward (phase-two) walker state of the MCSS estimator: packed
	// keys plus importance weights.
	fkeys []uint64
	fwts  []float64

	// tmp is the radix-sort swap buffer for sortTouched.
	tmp []int32
}

// NewScratch returns a scratch able to accumulate over n nodes.
func NewScratch(n int) *Scratch {
	return &Scratch{hist: make([]float64, n)}
}

// grow ensures the dense histograms cover n nodes.
func (s *Scratch) grow(n int) {
	if len(s.hist) < n {
		s.hist = make([]float64, n)
	}
	if len(s.cnt) < n {
		s.cnt = make([]int32, n)
	}
}

// Add deposits w at index k. Deposits must be positive (the histogram
// uses hist[k] == 0 as the "untouched" marker, which positive sums can
// never re-enter); every walk estimator in this package deposits
// probability mass or positive importance weights, so the precondition
// holds by construction.
func (s *Scratch) Add(k int32, w float64) {
	if s.hist[k] == 0 {
		s.touched = append(s.touched, k)
	}
	s.hist[k] += w
}

// sortTouched sorts the touched list ascending. Touched lists on the
// query path run to R' ≈ 10⁴ dense small ints, where an LSD radix sort
// over the scratch's swap buffer beats comparison sorting by ~3× (and
// profiling showed sorting was half of single-pair query time under the
// original shell sort). Short lists fall back to the stdlib sort.
func (s *Scratch) sortTouched() {
	a := s.touched
	const radixMin = 64
	if len(a) < radixMin {
		slices.Sort(a)
		return
	}
	max := int32(0)
	for _, v := range a {
		if v > max {
			max = v
		}
	}
	if cap(s.tmp) < len(a) {
		s.tmp = make([]int32, len(a))
	}
	b := s.tmp[:len(a):len(a)]
	a = a[:len(a):len(a)]
	if max < 1<<16 {
		// Two byte passes with both histograms built in one read (the
		// common shape for node ids), ending back in s.touched.
		var c0, c1 [256]int32
		for _, v := range a {
			c0[uint8(v)]++
			c1[uint8(v>>8)]++
		}
		s0, s1 := int32(0), int32(0)
		for i := 0; i < 256; i++ {
			n0, n1 := c0[i], c1[i]
			c0[i], c1[i] = s0, s1
			s0 += n0
			s1 += n1
		}
		for _, v := range a {
			d := uint8(v)
			pos := c0[d]
			c0[d] = pos + 1
			b[pos] = v
		}
		for _, v := range b {
			d := uint8(v >> 8)
			pos := c1[d]
			c1[d] = pos + 1
			a[pos] = v
		}
		return
	}
	var counts [256]int32
	for shift := 0; max>>shift > 0; shift += 8 {
		clear(counts[:])
		for _, v := range a {
			counts[(v>>shift)&0xff]++
		}
		sum := int32(0)
		for i := range counts {
			c := counts[i]
			counts[i] = sum
			sum += c
		}
		for _, v := range a {
			d := (v >> shift) & 0xff
			pos := counts[d]
			counts[d] = pos + 1
			b[pos] = v
		}
		a, b = b, a
	}
	// An odd number of byte passes leaves the sorted data in the swap
	// buffer; copy it home.
	if &a[0] != &s.touched[0] {
		copy(s.touched, a)
	}
}

// FlushInto sorts the touched indices, appends the accumulated (index,
// value) entries to v (which is reset first, keeping its capacity), and
// clears the scratch for reuse. Duplicate touched entries (the batched
// kernels append without a dedup branch) collapse here: the first
// occurrence reads and zeroes the slot, later ones see zero and are
// skipped — which also drops explicit Add(k, 0) deposits never followed
// by a positive one, matching sparse.Accumulator.ToVector.
func (s *Scratch) FlushInto(v *sparse.Vector) {
	s.sortTouched()
	v.Idx = v.Idx[:0]
	v.Val = v.Val[:0]
	for _, k := range s.touched {
		if x := s.hist[k]; x != 0 {
			v.Idx = append(v.Idx, k)
			v.Val = append(v.Val, x)
		}
		s.hist[k] = 0
	}
	s.touched = s.touched[:0]
}

// TakeVector is FlushInto for callers that must hand ownership of the
// result away (e.g. rows stored into the indexing matrix): it allocates
// a right-sized sorted vector, fills it, and clears the scratch.
func (s *Scratch) TakeVector() *sparse.Vector {
	v := &sparse.Vector{
		Idx: make([]int32, 0, len(s.touched)),
		Val: make([]float64, 0, len(s.touched)),
	}
	s.FlushInto(v)
	return v
}

// DistBuf owns the per-step output buffers of DistributionsInto. The
// returned vectors alias its storage and stay valid until the next
// DistributionsInto call with the same buffer. The cnt buffers hold the
// raw integer visit counts the engine emits before the single
// count→float conversion; the sharded driver merges those directly so
// its sums stay integer (and therefore worker-count independent).
type DistBuf struct {
	idx  [][]int32
	cnt  [][]int32
	val  [][]float64
	vecs []sparse.Vector
}

// prep resets the buffer for T+1 step vectors, keeping capacity.
func (b *DistBuf) prep(T int) {
	for len(b.idx) < T+1 {
		b.idx = append(b.idx, nil)
		b.cnt = append(b.cnt, nil)
		b.val = append(b.val, nil)
	}
	for t := 0; t <= T; t++ {
		b.idx[t] = b.idx[t][:0]
		b.cnt[t] = b.cnt[t][:0]
	}
	if cap(b.vecs) < T+1 {
		b.vecs = make([]sparse.Vector, T+1)
	}
	b.vecs = b.vecs[:T+1]
}

// scale converts the integer step counts into empirical distributions:
// val = count/R, one float64 conversion and rounding per entry, so the
// result depends only on the per-node totals — not on the order walkers
// were counted in.
func (b *DistBuf) scale(T, R int) []sparse.Vector {
	invR := 1.0 / float64(R)
	for t := 0; t <= T; t++ {
		idx, cnt := b.idx[t], b.cnt[t]
		val := b.val[t][:0]
		for i := range idx {
			val = append(val, float64(cnt[i])*invR)
		}
		b.val[t] = val
		b.vecs[t] = sparse.Vector{Idx: idx, Val: val}
	}
	return b.vecs
}

// degenerateInto emits the single unit vector of a degenerate request
// (R <= 0 or T < 0).
func (s *Scratch) degenerateInto(buf *DistBuf, start int) []sparse.Vector {
	buf.prep(0) // T may be negative; the degenerate result is one unit vector
	buf.idx[0] = append(buf.idx[0][:0], int32(start))
	buf.val[0] = append(buf.val[0][:0], 1)
	buf.vecs = buf.vecs[:1]
	buf.vecs[0] = sparse.Vector{Idx: buf.idx[0], Val: buf.val[0]}
	return buf.vecs
}
