package walk

import (
	"slices"
	"testing"
	"testing/quick"

	"cloudwalker/internal/gen"
	"cloudwalker/internal/graph"
	"cloudwalker/internal/sparse"
	"cloudwalker/internal/xrand"
)

func TestScratchAddFlush(t *testing.T) {
	s := NewScratch(10)
	s.Add(7, 0.5)
	s.Add(2, 0.25)
	s.Add(7, 0.5)
	s.Add(4, 0) // explicit zero with no later deposit: dropped on flush
	var v sparse.Vector
	s.FlushInto(&v)
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	if v.NNZ() != 2 || v.Get(7) != 1 || v.Get(2) != 0.25 {
		t.Fatalf("flushed %+v", v)
	}
	// Scratch is clean for reuse.
	s.Add(1, 1)
	w := s.TakeVector()
	if w.NNZ() != 1 || w.Get(1) != 1 {
		t.Fatalf("reuse leaked state: %+v", w)
	}
}

func TestScratchFlushResetsOutput(t *testing.T) {
	s := NewScratch(10)
	out := sparse.Vector{Idx: []int32{1, 2, 3}, Val: []float64{9, 9, 9}}
	s.Add(5, 2)
	s.FlushInto(&out)
	if out.NNZ() != 1 || out.Get(5) != 2 {
		t.Fatalf("FlushInto must reset the output vector, got %+v", out)
	}
}

// distReference recomputes empirical distributions the naive way: every
// walker walks its whole trajectory on its own substream
// NewStream(seed, w), visit counts aggregate per (level, node), and each
// count converts to float64 once. This is the engine's definition with
// none of its batching — the bit-exactness oracle for every mode.
func distReference(g graph.View, start, T, R int, seed uint64) []map[int32]float64 {
	counts := make([]map[int32]int32, T+1)
	for t := range counts {
		counts[t] = make(map[int32]int32)
	}
	counts[0][int32(start)] = int32(R)
	for w := 0; w < R; w++ {
		src := xrand.NewStream(seed, uint64(w))
		cur := start
		for t := 1; t <= T; t++ {
			cur = StepIn(g, cur, src)
			if cur < 0 {
				break
			}
			counts[t][int32(cur)]++
		}
	}
	out := make([]map[int32]float64, T+1)
	invR := 1.0 / float64(R)
	for t := range counts {
		out[t] = make(map[int32]float64, len(counts[t]))
		for k, c := range counts[t] {
			out[t][k] = float64(c) * invR
		}
	}
	return out
}

// requireDistsMatch asserts vectors are sorted, deduplicated, and
// bit-identical to the reference maps.
func requireDistsMatch(t *testing.T, label string, got []sparse.Vector, want []map[int32]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d step vectors, want %d", label, len(got), len(want))
	}
	for tt := range got {
		v := got[tt]
		if err := v.Validate(); err != nil {
			t.Fatalf("%s t=%d: %v", label, tt, err)
		}
		if len(v.Idx) != len(want[tt]) {
			t.Fatalf("%s t=%d: nnz %d, reference %d", label, tt, len(v.Idx), len(want[tt]))
		}
		for k, idx := range v.Idx {
			if v.Val[k] != want[tt][idx] {
				t.Fatalf("%s t=%d node %d: %g, reference %g", label, tt, idx, v.Val[k], want[tt][idx])
			}
		}
	}
}

// TestDistributionsIntoMatchesNaiveBitExact pins the engine against the
// per-walker-substream definition across the crossover: R above the
// sort threshold starts in sorted mode and (on the dying power-law
// graph) finishes in scatter mode; R below it runs scatter throughout.
func TestDistributionsIntoMatchesNaiveBitExact(t *testing.T) {
	g, err := gen.RMAT(300, 2400, gen.DefaultRMAT, 5)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScratch(g.NumNodes())
	var buf DistBuf
	for _, R := range []int{50, batchSortMin * 4} {
		got := s.DistributionsInto(&buf, g.WalkView(), 11, 6, R, 3)
		requireDistsMatch(t, "dense", got, distReference(g, 11, 6, R, 3))
	}
}

func TestDistributionsIntoReuseIsClean(t *testing.T) {
	g, err := gen.ErdosRenyi(80, 500, 9)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScratch(g.NumNodes())
	var buf DistBuf
	// Burn a different query through the shared scratch and buffer first.
	s.DistributionsInto(&buf, g.WalkView(), 3, 5, 300, 1)
	got := s.DistributionsInto(&buf, g.WalkView(), 7, 5, 300, 2)
	requireDistsMatch(t, "reused", got, distReference(g, 7, 5, 300, 2))
}

func TestDistributionsIntoDegenerate(t *testing.T) {
	g, err := gen.Cycle(4)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScratch(g.NumNodes())
	var buf DistBuf
	// R <= 0 degenerates to the unit vector, like Distributions.
	got := s.DistributionsInto(&buf, g.WalkView(), 2, 3, 0, 1)
	if len(got) != 1 || got[0].NNZ() != 1 || got[0].Get(2) != 1 {
		t.Fatalf("degenerate result %+v", got)
	}
	// T = 0 keeps only the start distribution.
	got = s.DistributionsInto(&buf, g.WalkView(), 1, 0, 50, 2)
	if len(got) != 1 || got[0].NNZ() != 1 {
		t.Fatalf("T=0 result %+v", got)
	}
}

func TestDistributionsIntoNegativeT(t *testing.T) {
	g, err := gen.Cycle(3)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScratch(g.NumNodes())
	var buf DistBuf
	got := s.DistributionsInto(&buf, g.WalkView(), 1, -1, 10, 3)
	if len(got) != 1 || got[0].NNZ() != 1 || got[0].Get(1) != 1 {
		t.Fatalf("negative T result %+v", got)
	}
}

func TestStepViewVariantsMatch(t *testing.T) {
	g, err := gen.RMAT(100, 600, gen.DefaultRMAT, 4)
	if err != nil {
		t.Fatal(err)
	}
	vw := g.WalkView()
	a, b := xrand.New(5), xrand.New(5)
	for v := 0; v < g.NumNodes(); v++ {
		if got, want := StepInView(vw, int32(v), a), StepIn(g, v, b); int(got) != want {
			t.Fatalf("StepInView(%d) = %d, StepIn = %d", v, got, want)
		}
	}
	// ForwardWeighted delegates to the view, so comparing the two would
	// be tautological; check the view against an independent CSR
	// formulation of the importance-weighted step instead.
	csrForward := func(k int, w float64, steps int, src *xrand.Source) (int, float64) {
		cur := k
		for s := 0; s < steps; s++ {
			dOut := g.OutDegree(cur)
			if dOut == 0 {
				return -1, 0
			}
			next := int(g.OutNeighborAt(cur, src.Intn(dOut)))
			w *= float64(dOut) / float64(g.InDegree(next))
			cur = next
		}
		return cur, w
	}
	a, b = xrand.New(6), xrand.New(6)
	for v := 0; v < g.NumNodes(); v++ {
		jv, wv := ForwardWeightedView(vw, int32(v), 1.0, 3, a)
		j, w := csrForward(v, 1.0, 3, b)
		if int(jv) != j || wv != w {
			t.Fatalf("ForwardWeightedView(%d) = (%d,%v), CSR reference = (%d,%v)", v, jv, wv, j, w)
		}
	}
}

// Property: sortTouched (radix for long lists, comparison for short) is a
// correct sort for any list of node ids, across the one-pass (max < 256)
// and multi-pass byte widths, including the odd-pass copy-back.
func TestQuickSortTouched(t *testing.T) {
	f := func(seed uint64, big bool) bool {
		src := xrand.New(seed)
		n := src.Intn(400) + 1
		limit := 200 // one radix pass
		if big {
			limit = 1 << 20 // three radix passes
		}
		s := NewScratch(1)
		s.touched = make([]int32, n)
		for i := range s.touched {
			s.touched[i] = int32(src.Intn(limit))
		}
		want := append([]int32(nil), s.touched...)
		slices.Sort(want)
		s.sortTouched()
		return slices.Equal(s.touched, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: sortFrontier is a correct stable-by-walker radix sort of
// packed (node, walker) keys for any node width, including the odd-pass
// copy-back.
func TestQuickSortFrontier(t *testing.T) {
	f := func(seed uint64, wide bool) bool {
		src := xrand.New(seed)
		m := src.Intn(500) + 1
		limit := 200
		if wide {
			limit = 1 << 20
		}
		s := NewScratch(1)
		s.keys = make([]uint64, m)
		s.keysB = make([]uint64, m)
		for i := range s.keys {
			s.keys[i] = uint64(src.Intn(limit))<<32 | uint64(i)
		}
		want := append([]uint64(nil), s.keys...)
		slices.Sort(want) // node-major then walker id: matches stability
		s.sortFrontier(m, uint32(limit-1))
		return slices.Equal(s.keys[:m], want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
