package walk

import (
	"slices"
	"testing"
	"testing/quick"

	"cloudwalker/internal/gen"
	"cloudwalker/internal/sparse"
	"cloudwalker/internal/xrand"
)

func TestScratchAddFlush(t *testing.T) {
	s := NewScratch(10)
	s.Add(7, 0.5)
	s.Add(2, 0.25)
	s.Add(7, 0.5)
	s.Add(4, 0) // explicit zero with no later deposit: dropped on flush
	var v sparse.Vector
	s.FlushInto(&v)
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	if v.NNZ() != 2 || v.Get(7) != 1 || v.Get(2) != 0.25 {
		t.Fatalf("flushed %+v", v)
	}
	// Scratch is clean for reuse.
	s.Add(1, 1)
	w := s.TakeVector()
	if w.NNZ() != 1 || w.Get(1) != 1 {
		t.Fatalf("reuse leaked state: %+v", w)
	}
}

func TestScratchFlushResetsOutput(t *testing.T) {
	s := NewScratch(10)
	out := sparse.Vector{Idx: []int32{1, 2, 3}, Val: []float64{9, 9, 9}}
	s.Add(5, 2)
	s.FlushInto(&out)
	if out.NNZ() != 1 || out.Get(5) != 2 {
		t.Fatalf("FlushInto must reset the output vector, got %+v", out)
	}
}

func TestDistributionsIntoMatchesDistributions(t *testing.T) {
	g, err := gen.RMAT(300, 2400, gen.DefaultRMAT, 5)
	if err != nil {
		t.Fatal(err)
	}
	const start, T, R = 11, 6, 500
	want := Distributions(g, start, T, R, xrand.NewStream(3, 0))
	s := NewScratch(g.NumNodes())
	var buf DistBuf
	got := s.DistributionsInto(&buf, g.WalkView(), start, T, R, xrand.NewStream(3, 0))
	if len(got) != len(want) {
		t.Fatalf("length %d vs %d", len(got), len(want))
	}
	for tt := range want {
		a, b := want[tt], got[tt]
		if len(a.Idx) != len(b.Idx) {
			t.Fatalf("t=%d nnz %d vs %d", tt, len(a.Idx), len(b.Idx))
		}
		for k := range a.Idx {
			if a.Idx[k] != b.Idx[k] || a.Val[k] != b.Val[k] {
				t.Fatalf("t=%d entry %d differs: (%d,%v) vs (%d,%v)",
					tt, k, a.Idx[k], a.Val[k], b.Idx[k], b.Val[k])
			}
		}
	}
}

func TestDistributionsIntoReuseIsClean(t *testing.T) {
	g, err := gen.ErdosRenyi(80, 500, 9)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScratch(g.NumNodes())
	var buf DistBuf
	// Burn a different query through the shared scratch and buffer first.
	s.DistributionsInto(&buf, g.WalkView(), 3, 5, 300, xrand.NewStream(1, 0))
	got := s.DistributionsInto(&buf, g.WalkView(), 7, 5, 300, xrand.NewStream(2, 0))
	want := Distributions(g, 7, 5, 300, xrand.NewStream(2, 0))
	for tt := range want {
		if len(got[tt].Idx) != len(want[tt].Idx) {
			t.Fatalf("t=%d nnz %d vs %d", tt, len(got[tt].Idx), len(want[tt].Idx))
		}
		for k := range want[tt].Idx {
			if got[tt].Idx[k] != want[tt].Idx[k] || got[tt].Val[k] != want[tt].Val[k] {
				t.Fatalf("t=%d entry %d differs after reuse", tt, k)
			}
		}
	}
}

func TestDistributionsIntoDegenerate(t *testing.T) {
	g, err := gen.Cycle(4)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScratch(g.NumNodes())
	var buf DistBuf
	// R <= 0 degenerates to the unit vector, like Distributions.
	got := s.DistributionsInto(&buf, g.WalkView(), 2, 3, 0, xrand.New(1))
	if len(got) != 1 || got[0].NNZ() != 1 || got[0].Get(2) != 1 {
		t.Fatalf("degenerate result %+v", got)
	}
	// T = 0 keeps only the start distribution.
	got = s.DistributionsInto(&buf, g.WalkView(), 1, 0, 50, xrand.New(2))
	if len(got) != 1 || got[0].NNZ() != 1 {
		t.Fatalf("T=0 result %+v", got)
	}
}

func TestStepViewVariantsMatch(t *testing.T) {
	g, err := gen.RMAT(100, 600, gen.DefaultRMAT, 4)
	if err != nil {
		t.Fatal(err)
	}
	vw := g.WalkView()
	a, b := xrand.New(5), xrand.New(5)
	for v := 0; v < g.NumNodes(); v++ {
		if got, want := StepInView(vw, int32(v), a), StepIn(g, v, b); int(got) != want {
			t.Fatalf("StepInView(%d) = %d, StepIn = %d", v, got, want)
		}
	}
	// ForwardWeighted delegates to the view, so comparing the two would
	// be tautological; check the view against an independent CSR
	// formulation of the importance-weighted step instead.
	csrForward := func(k int, w float64, steps int, src *xrand.Source) (int, float64) {
		cur := k
		for s := 0; s < steps; s++ {
			dOut := g.OutDegree(cur)
			if dOut == 0 {
				return -1, 0
			}
			next := int(g.OutNeighborAt(cur, src.Intn(dOut)))
			w *= float64(dOut) / float64(g.InDegree(next))
			cur = next
		}
		return cur, w
	}
	a, b = xrand.New(6), xrand.New(6)
	for v := 0; v < g.NumNodes(); v++ {
		jv, wv := ForwardWeightedView(vw, int32(v), 1.0, 3, a)
		j, w := csrForward(v, 1.0, 3, b)
		if int(jv) != j || wv != w {
			t.Fatalf("ForwardWeightedView(%d) = (%d,%v), CSR reference = (%d,%v)", v, jv, wv, j, w)
		}
	}
}

// Property: sortTouched (radix for long lists, comparison for short) is a
// correct sort for any list of node ids, across the one-pass (max < 256)
// and multi-pass byte widths, including the odd-pass copy-back.
func TestQuickSortTouched(t *testing.T) {
	f := func(seed uint64, big bool) bool {
		src := xrand.New(seed)
		n := src.Intn(400) + 1
		limit := 200 // one radix pass
		if big {
			limit = 1 << 20 // three radix passes
		}
		s := NewScratch(1)
		s.touched = make([]int32, n)
		for i := range s.touched {
			s.touched[i] = int32(src.Intn(limit))
		}
		want := append([]int32(nil), s.touched...)
		slices.Sort(want)
		s.sortTouched()
		return slices.Equal(s.touched, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDistributionsIntoNegativeT(t *testing.T) {
	g, err := gen.Cycle(3)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScratch(g.NumNodes())
	var buf DistBuf
	got := s.DistributionsInto(&buf, g.WalkView(), 1, -1, 10, xrand.New(3))
	if len(got) != 1 || got[0].NNZ() != 1 || got[0].Get(1) != 1 {
		t.Fatalf("negative T result %+v", got)
	}
}
