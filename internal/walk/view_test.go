package walk

import (
	"testing"

	"cloudwalker/internal/graph"
	"cloudwalker/internal/sparse"
	"cloudwalker/internal/xrand"
)

// vecEqual reports bit-exact equality of two sparse vectors.
func vecEqual(a, b *sparse.Vector) bool {
	if len(a.Idx) != len(b.Idx) {
		return false
	}
	for k := range a.Idx {
		if a.Idx[k] != b.Idx[k] || a.Val[k] != b.Val[k] {
			return false
		}
	}
	return true
}

// dynamicAndCompacted builds the same effective graph three ways: as a
// dirty overlay (base plus pending edits), as its compacted CSR, and as
// a from-scratch CSR build.
func dynamicAndCompacted(t *testing.T) (*graph.Dynamic, *graph.Graph, *graph.Graph) {
	t.Helper()
	base := graph.MustFromEdges(8, [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {5, 1}, {6, 2}, {2, 6},
	})
	d := graph.NewDynamic(base)
	for _, e := range [][2]int{{4, 5}, {7, 0}, {1, 6}} {
		if ok, err := d.InsertEdge(e[0], e[1]); err != nil || !ok {
			t.Fatalf("insert %v: ok=%v err=%v", e, ok, err)
		}
	}
	if ok, err := d.DeleteEdge(2, 3); err != nil || !ok {
		t.Fatalf("delete: ok=%v err=%v", ok, err)
	}
	scratch := graph.MustFromEdges(8, [][2]int{
		{0, 1}, {1, 2}, {3, 4}, {4, 0}, {5, 1}, {6, 2}, {2, 6},
		{4, 5}, {7, 0}, {1, 6},
	})

	// Compact a clone so d itself stays dirty for the overlay path.
	clone := graph.NewDynamic(base)
	for _, e := range [][2]int{{4, 5}, {7, 0}, {1, 6}} {
		if _, err := clone.InsertEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := clone.DeleteEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	compacted, _, err := clone.Compact()
	if err != nil {
		t.Fatal(err)
	}
	return d, compacted, scratch
}

// TestDistributionsOverlayBitIdentical pins the determinism contract of
// the View fast-path dispatch: walking a dirty overlay through the
// interface path produces bit-identical distributions to walking the
// compacted CSR (dense kernel) and a from-scratch build of the same edge
// list.
func TestDistributionsOverlayBitIdentical(t *testing.T) {
	d, compacted, scratch := dynamicAndCompacted(t)
	if d.WalkView() != nil {
		t.Fatal("test setup: overlay should be dirty (interface path)")
	}
	const T, R = 6, 500
	for start := 0; start < 8; start++ {
		seed := xrand.Mix(42, uint64(start))
		a := Distributions(d, start, T, R, seed)
		b := Distributions(compacted, start, T, R, seed)
		c := Distributions(scratch, start, T, R, seed)
		for tt := range a {
			if !vecEqual(a[tt], b[tt]) {
				t.Fatalf("start %d step %d: overlay vs compacted differ", start, tt)
			}
			if !vecEqual(b[tt], c[tt]) {
				t.Fatalf("start %d step %d: compacted vs scratch differ", start, tt)
			}
		}
	}
}

// TestForwardWeightedOverlayBitIdentical pins the same contract for the
// importance-weighted forward walk.
func TestForwardWeightedOverlayBitIdentical(t *testing.T) {
	d, compacted, _ := dynamicAndCompacted(t)
	for k := 0; k < 8; k++ {
		for steps := 1; steps <= 4; steps++ {
			s1 := xrand.NewStream(9, uint64(k*10+steps))
			s2 := xrand.NewStream(9, uint64(k*10+steps))
			j1, w1 := ForwardWeighted(d, k, 1.0, steps, s1)
			j2, w2 := ForwardWeighted(compacted, k, 1.0, steps, s2)
			if j1 != j2 || w1 != w2 {
				t.Fatalf("k=%d steps=%d: overlay (%d,%g) vs compacted (%d,%g)",
					k, steps, j1, w1, j2, w2)
			}
		}
	}
}

// TestMeetingTimeOverlay runs the first-meeting estimator over the three
// formulations with one RNG stream each; identical stepping order means
// identical meeting times.
func TestMeetingTimeOverlay(t *testing.T) {
	d, compacted, scratch := dynamicAndCompacted(t)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			a := MeetingTime(d, i, j, 10, xrand.NewStream(3, uint64(i*8+j)))
			b := MeetingTime(compacted, i, j, 10, xrand.NewStream(3, uint64(i*8+j)))
			c := MeetingTime(scratch, i, j, 10, xrand.NewStream(3, uint64(i*8+j)))
			if a != b || b != c {
				t.Fatalf("(%d,%d): meeting times %d/%d/%d differ", i, j, a, b, c)
			}
		}
	}
}
