// Package walk implements the Monte Carlo random-walk engine at the heart
// of CloudWalker.
//
// A SimRank walk moves backward: at node v it steps to a uniformly random
// in-neighbor of v. The empirical distribution of R such walkers after t
// steps is an unbiased estimate of P^t e_start, where P is the graph's
// column-stochastic backward transition operator (sparse.Transition). A
// walker that reaches a node with no in-links terminates, matching the
// vanishing mass of P's zero columns.
package walk

import (
	"sync"

	"cloudwalker/internal/graph"
	"cloudwalker/internal/sparse"
	"cloudwalker/internal/xrand"
)

// StepIn moves one step backward from v: a uniform random in-neighbor,
// or -1 if v has none.
func StepIn(g *graph.Graph, v int, src *xrand.Source) int {
	d := g.InDegree(v)
	if d == 0 {
		return -1
	}
	return int(g.InNeighborAt(v, src.Intn(d)))
}

// StepOut moves one step forward from u: a uniform random out-neighbor,
// or -1 if u has none.
func StepOut(g *graph.Graph, u int, src *xrand.Source) int {
	d := g.OutDegree(u)
	if d == 0 {
		return -1
	}
	return int(g.OutNeighborAt(u, src.Intn(d)))
}

// Path walks T backward steps from start and returns the node visited at
// each step t = 0..T; entries after termination are -1.
func Path(g *graph.Graph, start, T int, src *xrand.Source) []int32 {
	path := make([]int32, T+1)
	cur := start
	path[0] = int32(start)
	for t := 1; t <= T; t++ {
		if cur >= 0 {
			cur = StepIn(g, cur, src)
		}
		path[t] = int32(cur)
	}
	return path
}

// Distributions runs R backward walkers from start for T steps and returns
// the empirical distributions p̂_t ≈ P^t e_start for t = 0..T. Each
// distribution sums to (walkers still alive at t)/R ≤ 1.
func Distributions(g *graph.Graph, start, T, R int, src *xrand.Source) []*sparse.Vector {
	if R <= 0 || T < 0 {
		return []*sparse.Vector{sparse.Unit(start)}
	}
	accs := make([]*sparse.Accumulator, T+1)
	for t := range accs {
		accs[t] = sparse.NewAccumulator()
	}
	w := 1.0 / float64(R)
	for r := 0; r < R; r++ {
		cur := start
		accs[0].Add(int32(start), w)
		for t := 1; t <= T; t++ {
			cur = StepIn(g, cur, src)
			if cur < 0 {
				break
			}
			accs[t].Add(int32(cur), w)
		}
	}
	out := make([]*sparse.Vector, T+1)
	for t := range out {
		out[t] = accs[t].ToVector()
	}
	return out
}

// DistributionsParallel is Distributions with the R walkers split across
// `workers` goroutines, each with an independent RNG stream derived from
// seed. Results are deterministic for a fixed (seed, workers) pair.
func DistributionsParallel(g *graph.Graph, start, T, R, workers int, seed uint64) []*sparse.Vector {
	if workers <= 1 || R < 2*workers {
		return Distributions(g, start, T, R, xrand.NewStream(seed, 0))
	}
	chunks := make([][]*sparse.Vector, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		share := R / workers
		if w < R%workers {
			share++
		}
		wg.Add(1)
		go func(w, share int) {
			defer wg.Done()
			src := xrand.NewStream(seed, uint64(w))
			chunks[w] = Distributions(g, start, T, share, src)
		}(w, share)
	}
	wg.Wait()
	// Merge: each chunk's distributions are normalized by its own share,
	// so reweight by share/R before summing.
	out := make([]*sparse.Vector, T+1)
	for t := 0; t <= T; t++ {
		acc := sparse.NewAccumulator()
		for w := 0; w < workers; w++ {
			share := R / workers
			if w < R%workers {
				share++
			}
			scale := float64(share) / float64(R)
			d := chunks[w][t]
			for k, idx := range d.Idx {
				acc.Add(idx, d.Val[k]*scale)
			}
		}
		out[t] = acc.ToVector()
	}
	return out
}

// ForwardWeighted performs the importance-weighted forward walk of the
// MCSS estimator (DESIGN.md §3.4): starting at node k with weight w, take
// `steps` transitions to a uniform random out-neighbor, multiplying the
// weight by |Out(cur)| / |In(next)| at each step. It returns the final
// node and weight, or (-1, 0) if the walk dies at a node with no
// out-links. The expectation of the deposited weight at node j equals
// w * Pr[t-step backward walk from j ends at k].
func ForwardWeighted(g *graph.Graph, k int, w float64, steps int, src *xrand.Source) (int, float64) {
	cur := k
	for s := 0; s < steps; s++ {
		dOut := g.OutDegree(cur)
		if dOut == 0 {
			return -1, 0
		}
		next := int(g.OutNeighborAt(cur, src.Intn(dOut)))
		w *= float64(dOut) / float64(g.InDegree(next))
		cur = next
	}
	return cur, w
}

// MeetingTime runs two coupled backward walks from i and j (independent
// uniform steps) and returns the first step 1..T at which they occupy the
// same node, or 0 if they never meet within T steps. This is the classic
// first-meeting view of SimRank used by the naive MC baseline and by the
// fingerprint index.
func MeetingTime(g *graph.Graph, i, j, T int, src *xrand.Source) int {
	a, b := i, j
	for t := 1; t <= T; t++ {
		a = StepIn(g, a, src)
		b = StepIn(g, b, src)
		if a < 0 || b < 0 {
			return 0
		}
		if a == b {
			return t
		}
	}
	return 0
}
