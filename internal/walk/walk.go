// Package walk implements the Monte Carlo random-walk engine at the heart
// of CloudWalker.
//
// A SimRank walk moves backward: at node v it steps to a uniformly random
// in-neighbor of v. The empirical distribution of R such walkers after t
// steps is an unbiased estimate of P^t e_start, where P is the graph's
// column-stochastic backward transition operator (sparse.Transition). A
// walker that reaches a node with no in-links terminates, matching the
// vanishing mass of P's zero columns.
package walk

import (
	"math"
	"sync"

	"cloudwalker/internal/graph"
	"cloudwalker/internal/sparse"
	"cloudwalker/internal/xrand"
)

// StepIn moves one step backward from v: a uniform random in-neighbor,
// or -1 if v has none. It accepts any graph.View (immutable CSR or a
// dynamic overlay) and consumes one Intn call iff v has in-links, the
// same randomness contract as the dense StepInView kernel. The degree
// and the chosen neighbor come from ONE row snapshot (the View contract
// guarantees the returned slice is stable), so a concurrent mutation of
// a live overlay can never tear the (degree, index) pair.
func StepIn(g graph.View, v int, src *xrand.Source) int {
	row := g.InNeighbors(v)
	if len(row) == 0 {
		return -1
	}
	return int(row[src.Intn(len(row))])
}

// StepOut moves one step forward from u: a uniform random out-neighbor,
// or -1 if u has none (same row-snapshot discipline as StepIn).
func StepOut(g graph.View, u int, src *xrand.Source) int {
	row := g.OutNeighbors(u)
	if len(row) == 0 {
		return -1
	}
	return int(row[src.Intn(len(row))])
}

// Path walks T backward steps from start and returns the node visited at
// each step t = 0..T; entries after termination are -1.
func Path(g graph.View, start, T int, src *xrand.Source) []int32 {
	path := make([]int32, T+1)
	cur := start
	path[0] = int32(start)
	for t := 1; t <= T; t++ {
		if cur >= 0 {
			cur = StepIn(g, cur, src)
		}
		path[t] = int32(cur)
	}
	return path
}

// Distributions runs R backward walkers from start for T steps and returns
// the empirical distributions p̂_t ≈ P^t e_start for t = 0..T. Each
// distribution sums to (walkers still alive at t)/R ≤ 1.
//
// This convenience wrapper draws working memory from a package pool and
// copies the results out; query loops should hold their own Scratch and
// call DistributionsInto instead (same output, zero steady-state
// allocation, no copies).
//
// Distributions accepts any graph.View: the dense zero-allocation kernel
// runs when the view can serve a WalkView (an immutable *Graph, or a
// clean *Dynamic), and an interface-stepping path — bit-identical for
// the same effective graph — covers dirty overlays.
func Distributions(g graph.View, start, T, R int, src *xrand.Source) []*sparse.Vector {
	if R <= 0 || T < 0 {
		return []*sparse.Vector{sparse.Unit(start)}
	}
	ds := distPool.Get().(*distScratch)
	defer distPool.Put(ds)
	vecs := ds.sc.DistributionsViewInto(&ds.buf, g, start, T, R, src)
	out := make([]*sparse.Vector, len(vecs))
	for t := range vecs {
		out[t] = vecs[t].Clone()
	}
	return out
}

// distScratch pools the transient workspace of the Distributions
// convenience wrapper, so callers that loop over it (DistributionsParallel
// workers, the LIN-style pull estimator's tests) don't allocate and zero
// an O(n) histogram per call. A zero-value Scratch grows on first use.
type distScratch struct {
	sc  Scratch
	buf DistBuf
}

var distPool = sync.Pool{New: func() any { return new(distScratch) }}

// DistributionsParallel is Distributions with the R walkers split across
// `workers` goroutines, each with an independent RNG stream derived from
// seed. Results are deterministic for a fixed (seed, workers) pair.
func DistributionsParallel(g graph.View, start, T, R, workers int, seed uint64) []*sparse.Vector {
	if workers <= 1 || R < 2*workers {
		return Distributions(g, start, T, R, xrand.NewStream(seed, 0))
	}
	// Shares and merge scales are computed once, up front (each chunk's
	// distributions are normalized by its own share, so the merge
	// reweights by share/R before summing).
	shares := make([]int, workers)
	scales := make([]float64, workers)
	for w := 0; w < workers; w++ {
		shares[w] = R / workers
		if w < R%workers {
			shares[w]++
		}
		scales[w] = float64(shares[w]) / float64(R)
	}
	chunks := make([][]*sparse.Vector, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := xrand.NewStream(seed, uint64(w))
			chunks[w] = Distributions(g, start, T, shares[w], src)
		}(w)
	}
	wg.Wait()
	out := make([]*sparse.Vector, T+1)
	step := make([]*sparse.Vector, workers)
	ptr := make([]int, workers)
	for t := 0; t <= T; t++ {
		for w := 0; w < workers; w++ {
			step[w] = chunks[w][t]
		}
		clear(ptr)
		out[t] = mergeScaled(step, scales, ptr)
	}
	return out
}

// mergeScaled k-way merges already-sorted chunk vectors into one sorted
// vector, accumulating scales[w]*val contributions per index in worker
// order (which keeps the float64 sums bit-identical to the accumulator-
// based merge it replaces). ptr is the caller-owned cursor slice, one
// zeroed entry per vector.
func mergeScaled(vecs []*sparse.Vector, scales []float64, ptr []int) *sparse.Vector {
	total := 0
	for _, v := range vecs {
		total += v.NNZ()
	}
	out := &sparse.Vector{
		Idx: make([]int32, 0, total),
		Val: make([]float64, 0, total),
	}
	for {
		const none = int32(math.MaxInt32)
		min := none
		for w, v := range vecs {
			if ptr[w] < len(v.Idx) && v.Idx[ptr[w]] < min {
				min = v.Idx[ptr[w]]
			}
		}
		if min == none {
			return out
		}
		s := 0.0
		for w, v := range vecs {
			if ptr[w] < len(v.Idx) && v.Idx[ptr[w]] == min {
				s += v.Val[ptr[w]] * scales[w]
				ptr[w]++
			}
		}
		// Drop exact zeros, matching Accumulator.ToVector (cannot occur
		// for probability mass, but keep the invariant explicit).
		if s != 0 {
			out.Idx = append(out.Idx, min)
			out.Val = append(out.Val, s)
		}
	}
}

// ForwardWeighted performs the importance-weighted forward walk of the
// MCSS estimator (DESIGN.md §3.4): starting at node k with weight w, take
// `steps` transitions to a uniform random out-neighbor, multiplying the
// weight by |Out(cur)| / |In(next)| at each step. It returns the final
// node and weight, or (-1, 0) if the walk dies at a node with no
// out-links. The expectation of the deposited weight at node j equals
// w * Pr[t-step backward walk from j ends at k].
func ForwardWeighted(g graph.View, k int, w float64, steps int, src *xrand.Source) (int, float64) {
	if vw := graph.FastWalkView(g); vw != nil {
		j, wt := ForwardWeightedView(vw, int32(k), w, steps, src)
		return int(j), wt
	}
	cur := k
	for s := 0; s < steps; s++ {
		row := g.OutNeighbors(cur) // one stable row snapshot per step
		dOut := len(row)
		if dOut == 0 {
			return -1, 0
		}
		next := int(row[src.Intn(dOut)])
		// Same IEEE divide as the dense kernel, so the importance weight
		// (and every estimate built on it) stays bit-identical across
		// the overlay and CSR formulations. A concurrent delete on a
		// live overlay can drop the edge we just walked and leave next
		// with no in-links; treat that exactly like a dead walk instead
		// of dividing by zero.
		din := g.InDegree(next)
		if din == 0 {
			return -1, 0
		}
		w *= float64(dOut) / float64(din)
		cur = next
	}
	return cur, w
}

// MeetingTime runs two coupled backward walks from i and j (independent
// uniform steps) and returns the first step 1..T at which they occupy the
// same node, or 0 if they never meet within T steps. This is the classic
// first-meeting view of SimRank used by the naive MC baseline and by the
// fingerprint index.
func MeetingTime(g graph.View, i, j, T int, src *xrand.Source) int {
	a, b := i, j
	for t := 1; t <= T; t++ {
		a = StepIn(g, a, src)
		b = StepIn(g, b, src)
		if a < 0 || b < 0 {
			return 0
		}
		if a == b {
			return t
		}
	}
	return 0
}
