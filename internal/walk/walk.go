// Package walk implements the Monte Carlo random-walk engine at the heart
// of CloudWalker.
//
// A SimRank walk moves backward: at node v it steps to a uniformly random
// in-neighbor of v. The empirical distribution of R such walkers after t
// steps is an unbiased estimate of P^t e_start, where P is the graph's
// column-stochastic backward transition operator (sparse.Transition). A
// walker that reaches a node with no in-links terminates, matching the
// vanishing mass of P's zero columns.
//
// The hot kernels run on the batched level-synchronous engine (batch.go):
// all walkers advance together one level at a time, each drawing from its
// own RNG substream xrand.NewStream(seed, walkerID), with large frontiers
// radix-sorted by node so co-located walkers share row loads. Per-walker
// substreams plus integer visit counting make the distribution kernels'
// output bit-identical for a fixed seed at ANY worker count or batch
// shape — see DistributionsParallel.
package walk

import (
	"math"
	"sync"

	"cloudwalker/internal/graph"
	"cloudwalker/internal/sparse"
	"cloudwalker/internal/xrand"
)

// StepIn moves one step backward from v: a uniform random in-neighbor,
// or -1 if v has none. It accepts any graph.View (immutable CSR or a
// dynamic overlay) and consumes one Intn call iff v has in-links, the
// same randomness contract as the dense StepInView kernel. The degree
// and the chosen neighbor come from ONE row snapshot (the View contract
// guarantees the returned slice is stable), so a concurrent mutation of
// a live overlay can never tear the (degree, index) pair.
func StepIn(g graph.View, v int, src *xrand.Source) int {
	row := g.InNeighbors(v)
	if len(row) == 0 {
		return -1
	}
	return int(row[src.Intn(len(row))])
}

// StepOut moves one step forward from u: a uniform random out-neighbor,
// or -1 if u has none (same row-snapshot discipline as StepIn).
func StepOut(g graph.View, u int, src *xrand.Source) int {
	row := g.OutNeighbors(u)
	if len(row) == 0 {
		return -1
	}
	return int(row[src.Intn(len(row))])
}

// Path walks T backward steps from start and returns the node visited at
// each step t = 0..T; entries after termination are -1.
func Path(g graph.View, start, T int, src *xrand.Source) []int32 {
	path := make([]int32, T+1)
	cur := start
	path[0] = int32(start)
	for t := 1; t <= T; t++ {
		if cur >= 0 {
			cur = StepIn(g, cur, src)
		}
		path[t] = int32(cur)
	}
	return path
}

// Distributions runs R backward walkers from start for T steps and returns
// the empirical distributions p̂_t ≈ P^t e_start for t = 0..T. Each
// distribution sums to (walkers still alive at t)/R ≤ 1. Walker w draws
// from xrand.NewStream(seed, w).
//
// This convenience wrapper draws working memory from a package pool and
// copies the results out; query loops should hold their own Scratch and
// call DistributionsInto instead (same output, zero steady-state
// allocation, no copies).
//
// Distributions accepts any graph.View: the batched engine runs when the
// view can serve a WalkView (an immutable *Graph, or a clean *Dynamic),
// and an interface-stepping path — bit-identical for the same effective
// graph — covers dirty overlays.
func Distributions(g graph.View, start, T, R int, seed uint64) []*sparse.Vector {
	ds := distPool.Get().(*distScratch)
	defer distPool.Put(ds)
	vecs := ds.sc.DistributionsViewInto(&ds.buf, g, start, T, R, seed)
	out := make([]*sparse.Vector, len(vecs))
	for t := range vecs {
		out[t] = vecs[t].Clone()
	}
	return out
}

// distScratch pools the transient workspace of the Distributions
// convenience wrapper and the per-worker shards of DistributionsParallel,
// so callers that loop over them don't allocate and zero an O(n)
// histogram per call. A zero-value Scratch grows on first use.
type distScratch struct {
	sc  Scratch
	buf DistBuf
}

var distPool = sync.Pool{New: func() any { return new(distScratch) }}

// DistributionsParallel is Distributions with the R walkers sharded
// across `workers` goroutines. Because every walker owns substream
// xrand.NewStream(seed, walkerID) and shards emit integer visit counts
// that the merge sums before the single count→float conversion, the
// result is bit-identical to the single-threaded Distributions for the
// same seed at ANY worker count — sharding is a pure throughput knob.
func DistributionsParallel(g graph.View, start, T, R, workers int, seed uint64) []*sparse.Vector {
	if workers <= 1 || R < 2*workers {
		return Distributions(g, start, T, R, seed)
	}
	vw := graph.FastWalkView(g)
	if vw == nil {
		// Dirty overlays take the interface path; it exists for
		// correctness during update bursts, not throughput.
		return Distributions(g, start, T, R, seed)
	}
	// Contiguous walker shares; the split is invisible in the output, so
	// any partition works — balanced shares keep the makespan flat.
	shares := make([]int, workers)
	for w := 0; w < workers; w++ {
		shares[w] = R / workers
		if w < R%workers {
			shares[w]++
		}
	}
	shards := make([]*distScratch, workers)
	var wg sync.WaitGroup
	for w, first := 0, 0; w < workers; w++ {
		wg.Add(1)
		go func(w, first, count int) {
			defer wg.Done()
			ds := distPool.Get().(*distScratch)
			ds.sc.distCounts(&ds.buf, vw, start, T, count, seed, uint64(first))
			shards[w] = ds
		}(w, first, shares[w])
		first += shares[w]
	}
	wg.Wait()
	out := make([]*sparse.Vector, T+1)
	ptr := make([]int, workers)
	for t := 0; t <= T; t++ {
		clear(ptr)
		out[t] = mergeCounts(shards, t, ptr, R)
	}
	for _, ds := range shards {
		distPool.Put(ds)
	}
	return out
}

// mergeCounts k-way merges the shards' sorted per-level count lists,
// summing integer counts per node and scaling the total by 1/R once.
// Integer addition is associative, so the merged vector cannot depend on
// shard boundaries or worker count. ptr is the caller-owned cursor
// slice, one zeroed entry per shard.
func mergeCounts(shards []*distScratch, t int, ptr []int, R int) *sparse.Vector {
	total := 0
	for _, ds := range shards {
		total += len(ds.buf.idx[t])
	}
	out := &sparse.Vector{
		Idx: make([]int32, 0, total),
		Val: make([]float64, 0, total),
	}
	invR := 1.0 / float64(R)
	for {
		const none = int32(math.MaxInt32)
		min := none
		for w, ds := range shards {
			idx := ds.buf.idx[t]
			if ptr[w] < len(idx) && idx[ptr[w]] < min {
				min = idx[ptr[w]]
			}
		}
		if min == none {
			return out
		}
		c := int32(0)
		for w, ds := range shards {
			idx := ds.buf.idx[t]
			if ptr[w] < len(idx) && idx[ptr[w]] == min {
				c += ds.buf.cnt[t][ptr[w]]
				ptr[w]++
			}
		}
		out.Idx = append(out.Idx, min)
		out.Val = append(out.Val, float64(c)*invR)
	}
}

// ForwardWeighted performs the importance-weighted forward walk of the
// MCSS estimator (DESIGN.md §3.4): starting at node k with weight w, take
// `steps` transitions to a uniform random out-neighbor, multiplying the
// weight by |Out(cur)| / |In(next)| at each step. It returns the final
// node and weight, or (-1, 0) if the walk dies at a node with no
// out-links. The expectation of the deposited weight at node j equals
// w * Pr[t-step backward walk from j ends at k].
func ForwardWeighted(g graph.View, k int, w float64, steps int, src *xrand.Source) (int, float64) {
	if vw := graph.FastWalkView(g); vw != nil {
		j, wt := ForwardWeightedView(vw, int32(k), w, steps, src)
		return int(j), wt
	}
	cur := k
	for s := 0; s < steps; s++ {
		row := g.OutNeighbors(cur) // one stable row snapshot per step
		dOut := len(row)
		if dOut == 0 {
			return -1, 0
		}
		next := int(row[src.Intn(dOut)])
		// Same IEEE divide as the dense kernel, so the importance weight
		// (and every estimate built on it) stays bit-identical across
		// the overlay and CSR formulations. A concurrent delete on a
		// live overlay can drop the edge we just walked and leave next
		// with no in-links; treat that exactly like a dead walk instead
		// of dividing by zero.
		din := g.InDegree(next)
		if din == 0 {
			return -1, 0
		}
		w *= float64(dOut) / float64(din)
		cur = next
	}
	return cur, w
}

// MeetingTime runs two coupled backward walks from i and j (independent
// uniform steps) and returns the first step 1..T at which they occupy the
// same node, or 0 if they never meet within T steps. This is the classic
// first-meeting view of SimRank used by the naive MC baseline and by the
// fingerprint index.
func MeetingTime(g graph.View, i, j, T int, src *xrand.Source) int {
	a, b := i, j
	for t := 1; t <= T; t++ {
		a = StepIn(g, a, src)
		b = StepIn(g, b, src)
		if a < 0 || b < 0 {
			return 0
		}
		if a == b {
			return t
		}
	}
	return 0
}
