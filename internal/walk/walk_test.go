package walk

import (
	"math"
	"testing"

	"cloudwalker/internal/gen"
	"cloudwalker/internal/graph"
	"cloudwalker/internal/sparse"
	"cloudwalker/internal/xrand"
)

func diamond(t *testing.T) *graph.Graph {
	t.Helper()
	return graph.MustFromEdges(4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
}

func TestStepIn(t *testing.T) {
	g := diamond(t)
	src := xrand.New(1)
	// Node 0 has no in-links.
	if StepIn(g, 0, src) != -1 {
		t.Fatal("StepIn from dangling node should be -1")
	}
	// Node 1's only in-neighbor is 0.
	for i := 0; i < 10; i++ {
		if StepIn(g, 1, src) != 0 {
			t.Fatal("StepIn(1) must go to 0")
		}
	}
	// Node 3 goes to 1 or 2.
	for i := 0; i < 20; i++ {
		v := StepIn(g, 3, src)
		if v != 1 && v != 2 {
			t.Fatalf("StepIn(3) = %d", v)
		}
	}
}

func TestStepOut(t *testing.T) {
	g := diamond(t)
	src := xrand.New(2)
	if StepOut(g, 3, src) != -1 {
		t.Fatal("StepOut from sink should be -1")
	}
	for i := 0; i < 20; i++ {
		v := StepOut(g, 0, src)
		if v != 1 && v != 2 {
			t.Fatalf("StepOut(0) = %d", v)
		}
	}
}

func TestPath(t *testing.T) {
	g := diamond(t)
	src := xrand.New(3)
	p := Path(g, 3, 4, src)
	if len(p) != 5 {
		t.Fatalf("path length %d", len(p))
	}
	if p[0] != 3 {
		t.Fatal("path must start at start")
	}
	if p[1] != 1 && p[1] != 2 {
		t.Fatalf("step 1 = %d", p[1])
	}
	if p[2] != 0 {
		t.Fatalf("step 2 = %d, want 0", p[2])
	}
	// Node 0 is dangling: the rest of the path is -1.
	if p[3] != -1 || p[4] != -1 {
		t.Fatalf("post-termination entries %v", p[2:])
	}
}

func TestDistributionsExactOnDeterministicGraph(t *testing.T) {
	// On a cycle the walk is deterministic, so MC equals the exact
	// distribution for any R.
	g, err := gen.Cycle(5)
	if err != nil {
		t.Fatal(err)
	}
	dists := Distributions(g, 0, 3, 7, 4)
	for tt, d := range dists {
		want := ((0-tt)%5 + 5) % 5 // in-neighbor of k is k-1 mod 5
		if d.NNZ() != 1 || math.Abs(d.Get(want)-1) > 1e-12 {
			t.Fatalf("t=%d dist %+v, want unit at %d", tt, d, want)
		}
	}
}

func TestDistributionsMatchExactOperator(t *testing.T) {
	// Empirical distributions converge to P^t e_i.
	g, err := gen.ErdosRenyi(30, 200, 6)
	if err != nil {
		t.Fatal(err)
	}
	p := sparse.NewTransition(g)
	const start, T, R = 7, 4, 60000
	emp := Distributions(g, start, T, R, 5)
	exact := p.PowerUnit(start, T)
	for tt := 0; tt <= T; tt++ {
		diff := sparse.AddScaled(emp[tt], -1, exact[tt])
		if linf := maxAbs(diff); linf > 0.02 {
			t.Fatalf("t=%d: ‖emp-exact‖∞ = %g", tt, linf)
		}
	}
}

func maxAbs(v *sparse.Vector) float64 {
	m := 0.0
	for _, x := range v.Val {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

func TestDistributionsMassConservation(t *testing.T) {
	// Each step's distribution sums to alive/R <= 1, non-increasing in t.
	g, err := gen.RMAT(50, 250, gen.DefaultRMAT, 8)
	if err != nil {
		t.Fatal(err)
	}
	dists := Distributions(g, 10, 6, 500, 6)
	prev := 1.0
	for tt, d := range dists {
		s := d.Sum()
		if s > prev+1e-12 {
			t.Fatalf("mass increased at t=%d: %g > %g", tt, s, prev)
		}
		prev = s
	}
	if math.Abs(dists[0].Sum()-1) > 1e-9 {
		t.Fatalf("t=0 mass %g, want 1", dists[0].Sum())
	}
}

func TestDistributionsParallelMatchesSerialMoments(t *testing.T) {
	g, err := gen.ErdosRenyi(40, 240, 10)
	if err != nil {
		t.Fatal(err)
	}
	p := sparse.NewTransition(g)
	exact := p.PowerUnit(3, 3)
	par := DistributionsParallel(g, 3, 3, 40000, 4, 99)
	for tt := range exact {
		diff := sparse.AddScaled(par[tt], -1, exact[tt])
		if linf := maxAbs(diff); linf > 0.025 {
			t.Fatalf("parallel t=%d: err %g", tt, linf)
		}
	}
	// Total mass at t respects alive fraction.
	if par[0].Sum() < 0.999 || par[0].Sum() > 1.001 {
		t.Fatalf("parallel t=0 mass %g", par[0].Sum())
	}
}

// TestDistributionsParallelWorkerCountInvariant pins the headline
// determinism contract of the sharded driver: for a fixed seed, the
// result is bit-identical at EVERY worker count (including the
// single-threaded kernel), because walkers own their substreams and the
// merge sums integer counts. The old driver was only deterministic per
// (seed, workers) pair.
func TestDistributionsParallelWorkerCountInvariant(t *testing.T) {
	g, err := gen.RMAT(200, 1600, gen.DefaultRMAT, 11)
	if err != nil {
		t.Fatal(err)
	}
	const start, T, R = 1, 5, 1000
	want := Distributions(g, start, T, R, 42)
	for _, workers := range []int{1, 2, 3, 4, 7, 16} {
		got := DistributionsParallel(g, start, T, R, workers, 42)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d steps, want %d", workers, len(got), len(want))
		}
		for tt := range want {
			a, b := want[tt], got[tt]
			if len(a.Idx) != len(b.Idx) {
				t.Fatalf("workers=%d t=%d: nnz %d vs %d", workers, tt, len(b.Idx), len(a.Idx))
			}
			for k := range a.Idx {
				if a.Idx[k] != b.Idx[k] || a.Val[k] != b.Val[k] {
					t.Fatalf("workers=%d t=%d entry %d differs: (%d,%v) vs (%d,%v)",
						workers, tt, k, b.Idx[k], b.Val[k], a.Idx[k], a.Val[k])
				}
			}
		}
	}
}

// TestDistributionsParallelShareMath covers the share/scale arithmetic
// edge cases of the sharded driver: walker counts not divisible by the
// worker count, R == 2·workers (smallest sharded case), and the
// R < 2·workers fallback to the single-threaded kernel.
func TestDistributionsParallelShareMath(t *testing.T) {
	g, err := gen.ErdosRenyi(60, 400, 12)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ R, workers int }{
		{1003, 4}, // R % workers != 0: first R%workers shards get one extra
		{8, 4},    // R == 2·workers: smallest batch that still shards
		{7, 4},    // R < 2·workers: falls back to one shard
		{3, 8},    // degenerate fallback
	}
	for _, tc := range cases {
		want := Distributions(g, 2, 4, tc.R, 77)
		got := DistributionsParallel(g, 2, 4, tc.R, tc.workers, 77)
		for tt := range want {
			a, b := want[tt], got[tt]
			if len(a.Idx) != len(b.Idx) {
				t.Fatalf("R=%d workers=%d t=%d: nnz %d vs %d", tc.R, tc.workers, tt, len(b.Idx), len(a.Idx))
			}
			for k := range a.Idx {
				if a.Idx[k] != b.Idx[k] || a.Val[k] != b.Val[k] {
					t.Fatalf("R=%d workers=%d t=%d entry %d differs", tc.R, tc.workers, tt, k)
				}
			}
		}
		// Mass sanity: all R walkers are counted exactly once at t=0.
		if math.Abs(got[0].Sum()-1) > 1e-9 {
			t.Fatalf("R=%d workers=%d: t=0 mass %g, want 1", tc.R, tc.workers, got[0].Sum())
		}
	}
}

func TestDistributionsParallelDeterministic(t *testing.T) {
	g, err := gen.ErdosRenyi(20, 100, 11)
	if err != nil {
		t.Fatal(err)
	}
	a := DistributionsParallel(g, 1, 3, 1000, 3, 42)
	b := DistributionsParallel(g, 1, 3, 1000, 3, 42)
	for tt := range a {
		diff := sparse.AddScaled(a[tt], -1, b[tt])
		if maxAbs(diff) != 0 {
			t.Fatalf("same seed parallel runs differ at t=%d", tt)
		}
	}
}

func TestForwardWeightedUnbiased(t *testing.T) {
	// E[deposit at j] = Pr[t-step backward walk from j ends at k].
	// Check on the diamond with t=1, k=0: backward from 1 reaches 0 w.p. 1;
	// backward from 2 reaches 0 w.p. 1; from 3 w.p. 0 (needs 2 steps).
	g := diamond(t)
	src := xrand.New(12)
	const R = 200000
	dep := map[int]float64{}
	for r := 0; r < R; r++ {
		j, w := ForwardWeighted(g, 0, 1.0, 1, src)
		if j >= 0 {
			dep[j] += w / R
		}
	}
	if math.Abs(dep[1]-1) > 0.02 || math.Abs(dep[2]-1) > 0.02 {
		t.Fatalf("deposits %v, want ~1 at nodes 1 and 2", dep)
	}
	if dep[3] != 0 {
		t.Fatalf("deposit at 3 = %g, want 0", dep[3])
	}
}

func TestForwardWeightedTwoSteps(t *testing.T) {
	// k=0, t=2: backward 2-step walks reaching 0: only from 3 (3->1->0 or
	// 3->2->0, each prob 1/2, total 1).
	g := diamond(t)
	src := xrand.New(13)
	const R = 200000
	dep := map[int]float64{}
	for r := 0; r < R; r++ {
		j, w := ForwardWeighted(g, 0, 1.0, 2, src)
		if j >= 0 {
			dep[j] += w / R
		}
	}
	if math.Abs(dep[3]-1) > 0.03 {
		t.Fatalf("deposit at 3 = %g, want ~1 (got %v)", dep[3], dep)
	}
}

func TestForwardWeightedDiesAtSink(t *testing.T) {
	g := diamond(t)
	src := xrand.New(14)
	if j, w := ForwardWeighted(g, 3, 1.0, 1, src); j != -1 || w != 0 {
		t.Fatalf("walk from sink returned (%d, %g)", j, w)
	}
}

func TestMeetingTime(t *testing.T) {
	g := diamond(t)
	src := xrand.New(15)
	// Walks from 1 and 2 must meet at node 0 at step 1.
	if mt := MeetingTime(g, 1, 2, 5, src); mt != 1 {
		t.Fatalf("MeetingTime(1,2) = %d, want 1", mt)
	}
	// Walks from 0 die immediately: never meet.
	if mt := MeetingTime(g, 0, 3, 5, src); mt != 0 {
		t.Fatalf("MeetingTime(0,3) = %d, want 0", mt)
	}
}

func TestMeetingTimeSameNodeNotZero(t *testing.T) {
	// Meeting requires both walks to move first; from equal start nodes
	// on a cycle they stay together and "meet" at step 1.
	g, err := gen.Cycle(4)
	if err != nil {
		t.Fatal(err)
	}
	if mt := MeetingTime(g, 2, 2, 3, xrand.New(16)); mt != 1 {
		t.Fatalf("MeetingTime(2,2) = %d, want 1", mt)
	}
}

func BenchmarkDistributions(b *testing.B) {
	g, err := gen.RMAT(10000, 100000, gen.DefaultRMAT, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Distributions(g, i%g.NumNodes(), 10, 100, uint64(i))
	}
}

func BenchmarkForwardWeighted(b *testing.B) {
	g, err := gen.RMAT(10000, 100000, gen.DefaultRMAT, 2)
	if err != nil {
		b.Fatal(err)
	}
	src := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ForwardWeighted(g, i%g.NumNodes(), 1.0, 10, src)
	}
}
