package xrand

import "fmt"

// Alias is a Walker alias table for O(1) sampling from a fixed discrete
// distribution. Building is O(n); sampling costs one Uint64 and one
// comparison. The table is immutable after construction and safe for
// concurrent Sample calls as long as each caller uses its own Source.
type Alias struct {
	prob  []float64 // acceptance probability of column i
	alias []int32   // fallback outcome of column i
}

// NewAlias builds an alias table from non-negative weights. At least one
// weight must be positive.
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("xrand: alias table needs at least one weight")
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("xrand: negative weight %g at index %d", w, i)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("xrand: all weights are zero")
	}

	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	// Scaled probabilities: mean 1.
	scaled := make([]float64, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
	}
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i := n - 1; i >= 0; i-- {
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		l := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[l] = scaled[l]
		a.alias[l] = g
		scaled[g] = scaled[g] + scaled[l] - 1
		if scaled[g] < 1 {
			small = append(small, g)
		} else {
			large = append(large, g)
		}
	}
	for _, g := range large {
		a.prob[g] = 1
		a.alias[g] = g
	}
	for _, l := range small { // numerical leftovers
		a.prob[l] = 1
		a.alias[l] = l
	}
	return a, nil
}

// N returns the number of outcomes.
func (a *Alias) N() int { return len(a.prob) }

// Sample draws one outcome index using src.
func (a *Alias) Sample(src *Source) int {
	u := src.Uint64()
	i := int(u % uint64(len(a.prob))) // column
	f := float64(u>>11) / (1 << 53)   // reuse high bits as the coin
	if f < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}
