package xrand

import (
	"math"
	"testing"
)

// Statistical checks on substream independence. The walk engine's
// determinism contract hands walker w the substream NewStream(seed, w);
// everything downstream (adaptive stopping especially, which feeds
// per-walker meeting samples into a variance estimate) assumes those
// substreams behave like independent uniform generators. All seeds are
// fixed, so the tests are deterministic; the thresholds sit far above
// the relevant distribution quantiles so only a systematic defect — a
// shared state, a lattice in the stream-id mixing — can trip them.

// chiSquare64 buckets values into 64 bins by their top 6 bits and
// returns the chi-square statistic against the uniform expectation.
func chiSquare64(vals []uint64) float64 {
	var bins [64]float64
	for _, v := range vals {
		bins[v>>58]++
	}
	exp := float64(len(vals)) / 64
	chi := 0.0
	for _, c := range bins {
		d := c - exp
		chi += d * d / exp
	}
	return chi
}

// TestStreamChiSquareAcrossStreams checks uniformity ACROSS the stream
// dimension: the k-th output of stream i, swept over thousands of i,
// must be uniform. A weak stream-id mix would cluster these even if
// each stream is individually fine. df = 63; the 99.9th percentile is
// ~103, the bound is 120.
func TestStreamChiSquareAcrossStreams(t *testing.T) {
	for _, seed := range []uint64{1, 7, 0xdeadbeef} {
		for _, k := range []int{0, 1, 5} {
			vals := make([]uint64, 0, 4096)
			for i := uint64(0); i < 4096; i++ {
				s := NewStream(seed, i)
				for skip := 0; skip < k; skip++ {
					s.Uint64()
				}
				vals = append(vals, s.Uint64())
			}
			if chi := chiSquare64(vals); chi > 120 {
				t.Errorf("seed %d output %d: chi-square across streams %.1f > 120", seed, k, chi)
			}
		}
	}
}

// TestStreamChiSquareWithinStream: each substream is itself uniform.
func TestStreamChiSquareWithinStream(t *testing.T) {
	for _, id := range []uint64{0, 1, 63, 100000} {
		s := NewStream(7, id)
		vals := make([]uint64, 4096)
		for i := range vals {
			vals[i] = s.Uint64()
		}
		if chi := chiSquare64(vals); chi > 120 {
			t.Errorf("stream %d: chi-square %.1f > 120", id, chi)
		}
	}
}

// TestStreamPairwiseCorrelation: adjacent and near-adjacent substreams
// must be uncorrelated draw for draw. |r| for independent uniforms over
// n = 4096 draws is ~N(0, 1/√n) ≈ 0.0156; the bound is 5 sigma.
func TestStreamPairwiseCorrelation(t *testing.T) {
	const n = 4096
	corr := func(a, b *Source) float64 {
		var sa, sb, saa, sbb, sab float64
		for i := 0; i < n; i++ {
			x, y := a.Float64(), b.Float64()
			sa += x
			sb += y
			saa += x * x
			sbb += y * y
			sab += x * y
		}
		cov := sab/n - (sa/n)*(sb/n)
		va := saa/n - (sa/n)*(sa/n)
		vb := sbb/n - (sb/n)*(sb/n)
		return cov / math.Sqrt(va*vb)
	}
	pairs := [][2]uint64{{0, 1}, {1, 2}, {7, 8}, {100, 101}, {0, 4096}, {12345, 12346}}
	for _, p := range pairs {
		r := corr(NewStream(9, p[0]), NewStream(9, p[1]))
		if math.Abs(r) > 5.0/math.Sqrt(n) {
			t.Errorf("streams %d,%d: correlation %.4f beyond 5 sigma", p[0], p[1], r)
		}
	}
	// Same stream id under different master seeds must decorrelate too —
	// the adaptive path derives per-query seeds with Mix and reuses the
	// same walker ids under each.
	r := corr(NewStream(9, 3), NewStream(10, 3))
	if math.Abs(r) > 5.0/math.Sqrt(n) {
		t.Errorf("stream 3 under seeds 9,10: correlation %.4f beyond 5 sigma", r)
	}
}

// TestSeedStreamsPairwiseCorrelation runs the same correlation check
// over the batch seeder, which walkers actually use in the hot path.
func TestSeedStreamsPairwiseCorrelation(t *testing.T) {
	const n = 4096
	dst := make([]Source, 8)
	SeedStreams(dst, 21, 1000)
	for k := 0; k+1 < len(dst); k++ {
		a, b := &dst[k], &dst[k+1]
		var sa, sb, sab, saa, sbb float64
		for i := 0; i < n; i++ {
			x, y := a.Float64(), b.Float64()
			sa += x
			sb += y
			saa += x * x
			sbb += y * y
			sab += x * y
		}
		cov := sab/n - (sa/n)*(sb/n)
		va := saa/n - (sa/n)*(sa/n)
		vb := sbb/n - (sb/n)*(sb/n)
		if r := cov / math.Sqrt(va*vb); math.Abs(r) > 5.0/math.Sqrt(n) {
			t.Errorf("seeded streams %d,%d: correlation %.4f beyond 5 sigma", k, k+1, r)
		}
	}
}
