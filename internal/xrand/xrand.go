// Package xrand provides deterministic, splittable pseudo-random number
// generation for the CloudWalker reproduction.
//
// Every randomized component in this repository (graph generators, Monte
// Carlo walkers, baselines) draws from an xrand.Source so that experiments
// are reproducible bit-for-bit from a single master seed, and so that
// parallel workers can be handed statistically independent streams without
// locking. The generator is xoshiro256** seeded through SplitMix64, the
// combination recommended by the xoshiro authors.
package xrand

import (
	"math"
	"math/bits"
)

// Source is a xoshiro256** pseudo-random generator. It is NOT safe for
// concurrent use; hand each goroutine its own Source via Split or New with
// distinct stream identifiers.
type Source struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances a SplitMix64 state and returns the next output.
// It is used only for seeding, per the xoshiro authors' guidance.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source derived from seed. Distinct seeds yield streams that
// are independent for all practical purposes.
func New(seed uint64) *Source {
	s := &Source{}
	s.Reseed(seed)
	return s
}

// Reseed reinitializes the receiver in place exactly as New(seed) would.
// Pooled query scratch uses it so deriving a per-query generator does not
// allocate; the resulting output stream is bit-identical to New's.
func (s *Source) Reseed(seed uint64) {
	sm := seed
	s.s0 = splitmix64(&sm)
	s.s1 = splitmix64(&sm)
	s.s2 = splitmix64(&sm)
	s.s3 = splitmix64(&sm)
	// xoshiro must not start in the all-zero state; SplitMix64 cannot
	// produce four zero outputs in a row, but guard anyway.
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s0 = 0x9e3779b97f4a7c15
	}
}

// NewStream returns a Source for stream id derived from seed. It is the
// canonical way to give worker i its own generator: NewStream(seed, i) and
// NewStream(seed, j) are independent for i != j.
func NewStream(seed, stream uint64) *Source {
	s := &Source{}
	s.ReseedStream(seed, stream)
	return s
}

// ReseedStream reinitializes the receiver in place exactly as
// NewStream(seed, stream) would, without allocating.
func (s *Source) ReseedStream(seed, stream uint64) {
	// Mix the stream id through SplitMix64 so that adjacent stream ids
	// land far apart in seed space.
	sm := seed
	base := splitmix64(&sm)
	sm2 := base ^ (stream+1)*0xd1342543de82ef95
	s.Reseed(splitmix64(&sm2))
}

// Mix folds salt into seed and returns a new master seed. Callers that
// need a family of stream spaces per logical entity (one walker-stream
// space per query, say) derive an effective seed with Mix and then hand
// out NewStream(effSeed, i) streams; distinct (seed, salt) pairs yield
// independent stream spaces.
func Mix(seed, salt uint64) uint64 {
	sm := seed
	base := splitmix64(&sm)
	sm2 := base ^ (salt+1)*0x9e3779b97f4a7c15
	return splitmix64(&sm2)
}

// SeedStreams reseeds dst[k] exactly as NewStream(seed, first+k) would,
// for every k. It is the batch walker-seeding primitive of the
// level-synchronous walk engine: the per-seed SplitMix64 base is hoisted
// out of the loop (it does not depend on the stream id), so seeding R
// walker substreams costs R short independent SplitMix64 chains instead
// of R full derivations — the chains carry no loop dependency, so they
// pipeline.
func SeedStreams(dst []Source, seed, first uint64) {
	sm := seed
	base := splitmix64(&sm)
	for k := range dst {
		sm2 := base ^ (first+uint64(k)+1)*0xd1342543de82ef95
		// Reseed, manually unrolled: the five-deep SplitMix64 chain stays
		// in registers and neighboring walkers' chains overlap.
		c := splitmix64(&sm2)
		s := &dst[k]
		s.s0 = splitmix64(&c)
		s.s1 = splitmix64(&c)
		s.s2 = splitmix64(&c)
		s.s3 = splitmix64(&c)
		if s.s0|s.s1|s.s2|s.s3 == 0 {
			s.s0 = 0x9e3779b97f4a7c15
		}
	}
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = rotl(s.s3, 45)
	return result
}

// Split returns a new Source whose future outputs are independent of the
// receiver's. The receiver is advanced.
func (s *Source) Split() *Source {
	return New(s.Uint64())
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	bound := uint64(n)
	for {
		v := s.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= -bound%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo). bits.Mul64
// is an intrinsic (one MULX on amd64), where the previous hand-rolled
// 32-bit decomposition cost ~8 multiplies and adds per draw — the same
// product bit for bit, so every recorded stream is unchanged.
func mul64(a, b uint64) (hi, lo uint64) {
	return bits.Mul64(a, b)
}

// Int63 returns a non-negative 63-bit integer.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) method.
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (s *Source) ExpFloat64() float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n) using
// Fisher-Yates.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements via swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
