package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("same seed diverged at step %d: %d != %d", i, av, bv)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestNewStreamIndependence(t *testing.T) {
	// Streams with adjacent ids should not be correlated; check that the
	// first outputs differ and a simple lag correlation is small.
	s0, s1 := NewStream(7, 0), NewStream(7, 1)
	equal := 0
	for i := 0; i < 1000; i++ {
		if s0.Uint64() == s1.Uint64() {
			equal++
		}
	}
	if equal > 0 {
		t.Fatalf("adjacent streams collided %d times", equal)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-square style sanity check on 8 buckets.
	s := New(99)
	const n, draws = 8, 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d too far from %g", b, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean %g, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(11)
	const draws = 200000
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance %g, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(13)
	const draws = 200000
	sum := 0.0
	for i := 0; i < draws; i++ {
		v := s.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential variate %g", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean %g, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(17)
	for _, n := range []int{0, 1, 2, 10, 257} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	s := New(19)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum2 := 0
	for _, v := range xs {
		sum2 += v
	}
	if sum != sum2 {
		t.Fatalf("shuffle changed multiset: %v", xs)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(23)
	child := parent.Split()
	eq := 0
	for i := 0; i < 1000; i++ {
		if parent.Uint64() == child.Uint64() {
			eq++
		}
	}
	if eq > 0 {
		t.Fatalf("split streams collided %d times", eq)
	}
}

func TestQuickIntnInRange(t *testing.T) {
	s := New(29)
	f := func(n uint16, _ uint8) bool {
		m := int(n%1000) + 1
		v := s.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAliasErrors(t *testing.T) {
	if _, err := NewAlias(nil); err == nil {
		t.Error("empty weights accepted")
	}
	if _, err := NewAlias([]float64{0, 0}); err == nil {
		t.Error("all-zero weights accepted")
	}
	if _, err := NewAlias([]float64{1, -1}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestAliasDistribution(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != 4 {
		t.Fatalf("N = %d, want 4", a.N())
	}
	s := New(31)
	const draws = 200000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[a.Sample(s)]++
	}
	for i, w := range weights {
		want := w / 10 * draws
		if math.Abs(float64(counts[i])-want) > 6*math.Sqrt(want) {
			t.Errorf("outcome %d: count %d, want ~%g", i, counts[i], want)
		}
	}
}

func TestAliasSingleOutcome(t *testing.T) {
	a, err := NewAlias([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	s := New(37)
	for i := 0; i < 100; i++ {
		if v := a.Sample(s); v != 0 {
			t.Fatalf("single-outcome alias returned %d", v)
		}
	}
}

func TestAliasZeroWeightNeverSampled(t *testing.T) {
	a, err := NewAlias([]float64{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	s := New(41)
	for i := 0; i < 10000; i++ {
		v := a.Sample(s)
		if v == 0 || v == 2 {
			t.Fatalf("sampled zero-weight outcome %d", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += s.Intn(1000003)
	}
	_ = sink
}

func BenchmarkAliasSample(b *testing.B) {
	w := make([]float64, 1024)
	for i := range w {
		w[i] = float64(i%17) + 1
	}
	a, _ := NewAlias(w)
	s := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += a.Sample(s)
	}
	_ = sink
}

func TestReseedMatchesNew(t *testing.T) {
	// In-place reseeding must reproduce New/NewStream's streams exactly —
	// the pooled query scratch depends on it for bit-identical queries.
	s := New(123)
	for i := 0; i < 10; i++ {
		s.Uint64() // dirty the state
	}
	s.Reseed(77)
	fresh := New(77)
	for i := 0; i < 100; i++ {
		if a, b := s.Uint64(), fresh.Uint64(); a != b {
			t.Fatalf("Reseed output %d: %x != New's %x", i, a, b)
		}
	}
	s.ReseedStream(9, 4)
	freshStream := NewStream(9, 4)
	for i := 0; i < 100; i++ {
		if a, b := s.Uint64(), freshStream.Uint64(); a != b {
			t.Fatalf("ReseedStream output %d: %x != NewStream's %x", i, a, b)
		}
	}
}

func TestSeedStreamsMatchesNewStream(t *testing.T) {
	// The batch walker seeder must reproduce NewStream(seed, first+k)
	// exactly: the level-synchronous walk engine's determinism contract
	// ("walker w draws from stream walkerID, whatever the batch shape")
	// is stated in terms of NewStream.
	dst := make([]Source, 33)
	for i := range dst {
		dst[i].Reseed(uint64(i)) // dirty every slot
	}
	SeedStreams(dst, 42, 7)
	for k := range dst {
		want := NewStream(42, 7+uint64(k))
		for i := 0; i < 50; i++ {
			if a, b := dst[k].Uint64(), want.Uint64(); a != b {
				t.Fatalf("stream %d output %d: %x != NewStream's %x", k, i, a, b)
			}
		}
	}
}

func TestMixSeparatesStreamSpaces(t *testing.T) {
	// Streams from Mix-derived seeds must not collide with the parent
	// seed's own stream space (a collision would correlate two queries'
	// walkers). Sample a few streams from each space and compare prefixes.
	seen := map[uint64]string{}
	record := func(label string, seed uint64) {
		for i := uint64(0); i < 8; i++ {
			v := NewStream(seed, i).Uint64()
			if prev, ok := seen[v]; ok {
				t.Fatalf("first output collision between %s and %s", label, prev)
			}
			seen[v] = label
		}
	}
	record("base", 1)
	record("mix(1,0)", Mix(1, 0))
	record("mix(1,1)", Mix(1, 1))
	record("mix(2,0)", Mix(2, 0))
	if Mix(1, 0) == Mix(1, 1) || Mix(1, 0) == Mix(2, 0) {
		t.Fatal("Mix must separate distinct (seed, salt) pairs")
	}
}

func BenchmarkSeedStreams(b *testing.B) {
	dst := make([]Source, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SeedStreams(dst, uint64(i), uint64(i)*64)
	}
}
